#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/eventfd.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posix/fd.hpp"
#include "posix/governor.hpp"
#include "posix/predictor.hpp"
#include "server/worker.hpp"

namespace altx::server {

namespace {

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("altxd: fcntl(O_NONBLOCK)");
  }
}

/// True once `pid` no longer exists. Workers are the zygote's children and
/// the zygote ignores SIGCHLD, so the kernel auto-reaps them — no zombie
/// keeps the pid probe-able after death.
bool pid_gone(pid_t pid) {
  return ::kill(pid, 0) != 0 && errno == ESRCH;
}

bool wait_pid_gone(pid_t pid, std::chrono::milliseconds grace) {
  const auto deadline = std::chrono::steady_clock::now() + grace;
  while (!pid_gone(pid)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    timespec ts{0, 1'000'000};  // 1 ms
    ::nanosleep(&ts, nullptr);
  }
  return true;
}

/// A nonblocking framed connection: incoming bytes feed the decoder,
/// outgoing frames buffer until the fd drains (POLLOUT).
struct Conn {
  posix::Fd fd;
  FrameDecoder dec;
  Bytes out;
  std::size_t out_off = 0;
  bool dead = false;

  [[nodiscard]] bool wants_write() const { return out_off < out.size(); }

  void queue(const Frame& frame) {
    if (dead) return;
    const Bytes raw = encode_frame(frame);
    out.insert(out.end(), raw.begin(), raw.end());
    flush();
  }

  void flush() {
    while (out_off < out.size()) {
      const ssize_t n =
          ::write(fd.get(), out.data() + out_off, out.size() - out_off);
      if (n > 0) {
        out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      dead = true;  // EPIPE and friends: the poll loop sweeps us
      return;
    }
    if (out_off == out.size()) {
      out.clear();
      out_off = 0;
    }
  }
};

Frame make_frame(FrameType type, std::uint64_t job_id, Bytes payload,
                 std::uint64_t trace_id = 0, std::uint64_t span_id = 0) {
  Frame f;
  f.type = type;
  f.job_id = job_id;
  f.trace_id = trace_id;
  f.span_id = span_id;
  f.payload = std::move(payload);
  return f;
}

struct QueuedJob {
  std::uint64_t job_id = 0;
  JobSpec spec;
  std::uint64_t submit_ns = 0;
  std::uint64_t trace_id = 0;  // client-minted correlation id (frame header)
  std::uint64_t span_id = 0;
};

/// One HTTP/1.0 metrics-scrape connection: read whatever request arrives,
/// answer one exposition document, flush, close. The daemon is not a web
/// server — no keep-alive, no routing beyond "any GET gets the metrics".
struct HttpConn {
  posix::Fd fd;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  bool responded = false;
  bool dead = false;

  [[nodiscard]] bool wants_write() const { return out_off < out.size(); }

  void flush() {
    while (out_off < out.size()) {
      const ssize_t n =
          ::write(fd.get(), out.data() + out_off, out.size() - out_off);
      if (n > 0) {
        out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      dead = true;
      return;
    }
    if (responded && out_off == out.size()) dead = true;  // done: close
  }
};

/// Per-client lifetime job counters for the exposition endpoint. Kept in a
/// map that outlives the connection — a scraper polling every few seconds
/// must still see the totals of a client that finished in between.
struct ClientCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t denied = 0;
  std::uint64_t canceled = 0;
};

struct ClientState {
  std::uint64_t id = 0;
  bool tcp = false;
  Conn conn;
  int running = 0;
  std::deque<QueuedJob> queue;
};

struct WorkerState {
  pid_t pid = -1;
  Conn conn;
  bool busy = false;
  std::uint64_t client_id = 0;
  std::uint64_t job_id = 0;
  std::uint64_t trace_id = 0;  // of the running job, for teardown replies
  std::uint64_t span_id = 0;
};

}  // namespace

struct Server::Impl {
  ServerConfig cfg;

  posix::Fd listen_unix;
  posix::Fd listen_tcp;
  posix::Fd listen_metrics;
  int bound_tcp_port = 0;
  int bound_metrics_port = 0;
  posix::Fd stop_fd;
  std::vector<std::unique_ptr<HttpConn>> http_conns;
  std::map<std::uint64_t, ClientCounters> client_counters;
  std::atomic<int> stop_fd_raw{-1};  // for the signal-safe request_stop

  std::unique_ptr<posix::SpeculationGovernor> owned_gov;
  posix::SpeculationGovernor* gov = nullptr;
  std::optional<Zygote> zygote;

  std::map<std::uint64_t, std::unique_ptr<ClientState>> clients;
  std::vector<std::unique_ptr<WorkerState>> workers;
  std::uint64_t next_client_id = 1;
  std::uint64_t rr_last = 0;  // last client id served, for fair draining
  bool started = false;
  bool stopping = false;

  // Lifetime counters and live gauges; atomics because stats() may be read
  // from another thread (tests poll it while run() owns the loop).
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> denied{0};
  std::atomic<std::uint64_t> canceled{0};
  std::atomic<std::uint64_t> worker_spawns{0};
  std::atomic<std::uint64_t> worker_respawns{0};
  std::atomic<std::uint64_t> inflight{0};
  std::atomic<std::uint64_t> inflight_hw{0};
  std::atomic<std::uint32_t> queued_g{0};
  std::atomic<std::uint32_t> running_g{0};
  std::atomic<std::uint32_t> clients_g{0};
  std::atomic<std::uint32_t> workers_g{0};

  // ---- lifecycle -------------------------------------------------------

  void bind_unix() {
    ALTX_REQUIRE(!cfg.socket_path.empty(), "altxd: socket_path is required");
    ALTX_REQUIRE(cfg.socket_path.size() < sizeof(sockaddr_un{}.sun_path),
                 "altxd: socket path too long");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("altxd: socket(AF_UNIX)");
    listen_unix = posix::Fd(fd);
    ::unlink(cfg.socket_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw_errno("altxd: bind(" + cfg.socket_path + ")");
    }
    if (::listen(fd, 64) != 0) throw_errno("altxd: listen(unix)");
    set_nonblock(fd);
  }

  void bind_tcp() {
    if (cfg.tcp_port == 0) return;
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("altxd: socket(AF_INET)");
    listen_tcp = posix::Fd(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
    addr.sin_port =
        ::htons(cfg.tcp_port > 0 ? static_cast<std::uint16_t>(cfg.tcp_port)
                                 : 0);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw_errno("altxd: bind(tcp)");
    }
    if (::listen(fd, 64) != 0) throw_errno("altxd: listen(tcp)");
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      throw_errno("altxd: getsockname");
    }
    bound_tcp_port = ::ntohs(addr.sin_port);
    set_nonblock(fd);
  }

  void bind_metrics() {
    if (cfg.metrics_addr.empty()) return;
    // "PORT" or "HOST:PORT"; host defaults to loopback — the exposition
    // carries operational detail and has no auth, so binding wide must be
    // an explicit choice.
    std::string host = "127.0.0.1";
    std::string port_str = cfg.metrics_addr;
    const auto colon = cfg.metrics_addr.rfind(':');
    if (colon != std::string::npos) {
      if (colon > 0) host = cfg.metrics_addr.substr(0, colon);
      port_str = cfg.metrics_addr.substr(colon + 1);
    }
    const int port = std::atoi(port_str.c_str());
    ALTX_REQUIRE(port >= 0 && port <= 65535 &&
                     (!port_str.empty() && port_str != "0") == (port != 0),
                 "altxd: bad metrics_addr port");
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("altxd: socket(metrics)");
    listen_metrics = posix::Fd(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    if (host == "0.0.0.0") {
      addr.sin_addr.s_addr = ::htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw SystemError("altxd: bad metrics_addr host " + host, EINVAL);
    }
    addr.sin_port = ::htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw_errno("altxd: bind(metrics " + cfg.metrics_addr + ")");
    }
    if (::listen(fd, 16) != 0) throw_errno("altxd: listen(metrics)");
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      throw_errno("altxd: getsockname(metrics)");
    }
    bound_metrics_port = ::ntohs(addr.sin_port);
    set_nonblock(fd);
  }

  /// The exposition document: server counters/gauges (the same atomics
  /// kStatsReply serializes, so the two surfaces can never disagree),
  /// per-client labeled job counters, and the registry's histograms as
  /// cumulative buckets.
  std::string render_prometheus() const {
    const WireStats s = make_stats();
    std::string out;
    char buf[192];
    const auto counter = [&](const char* name, const char* help,
                             std::uint64_t v) {
      std::snprintf(buf, sizeof buf,
                    "# HELP altx_%s %s\n# TYPE altx_%s counter\naltx_%s %llu\n",
                    name, help, name, name,
                    static_cast<unsigned long long>(v));
      out += buf;
    };
    const auto gauge = [&](const char* name, const char* help,
                           std::uint64_t v) {
      std::snprintf(buf, sizeof buf,
                    "# HELP altx_%s %s\n# TYPE altx_%s gauge\naltx_%s %llu\n",
                    name, help, name, name,
                    static_cast<unsigned long long>(v));
      out += buf;
    };
    counter("jobs_accepted_total", "submits admitted to a queue", s.accepted);
    counter("jobs_completed_total", "results streamed back", s.completed);
    counter("jobs_denied_total", "RETRY-AFTER denials", s.denied);
    counter("jobs_canceled_total", "cancels and disconnect teardowns",
            s.canceled);
    counter("worker_spawns_total", "workers forked from the zygote",
            s.worker_spawns);
    counter("worker_respawns_total", "replacements after forced teardown",
            s.worker_respawns);
    counter("gov_tokens_reclaimed_total", "governor reconcile total",
            s.tokens_reclaimed);
    gauge("queue_depth", "jobs queued across all clients", s.queued);
    gauge("jobs_running", "jobs currently racing in workers", s.running);
    gauge("jobs_inflight_hw", "submitted-not-replied high water",
          s.inflight_hw);
    gauge("clients_connected", "live client connections", s.clients);
    gauge("zygote_pool_size", "workers in the pool",
          static_cast<std::uint64_t>(s.workers_idle) + s.workers_busy);
    gauge("workers_idle", "pool workers awaiting a job", s.workers_idle);
    gauge("workers_busy", "pool workers racing a job", s.workers_busy);
    out +=
        "# HELP altx_client_jobs_total per-client lifetime job counts\n"
        "# TYPE altx_client_jobs_total counter\n";
    for (const auto& [id, cc] : client_counters) {
      std::snprintf(buf, sizeof buf,
                    "altx_client_jobs_total{client=\"%llu\","
                    "outcome=\"submitted\"} %llu\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(cc.submitted));
      out += buf;
      std::snprintf(buf, sizeof buf,
                    "altx_client_jobs_total{client=\"%llu\","
                    "outcome=\"completed\"} %llu\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(cc.completed));
      out += buf;
      std::snprintf(buf, sizeof buf,
                    "altx_client_jobs_total{client=\"%llu\","
                    "outcome=\"denied\"} %llu\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(cc.denied));
      out += buf;
      std::snprintf(buf, sizeof buf,
                    "altx_client_jobs_total{client=\"%llu\","
                    "outcome=\"canceled\"} %llu\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(cc.canceled));
      out += buf;
    }
    out += obs::MetricsRegistry::global().to_prometheus();
    return out;
  }

  void accept_metrics() {
    for (;;) {
      const int fd = ::accept4(listen_metrics.get(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (http_conns.size() >= 32) {  // scrapers, not traffic: a tiny cap
        ::close(fd);
        continue;
      }
      auto h = std::make_unique<HttpConn>();
      h->fd = posix::Fd(fd);
      http_conns.push_back(std::move(h));
    }
  }

  void read_http(HttpConn& h) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(h.fd.get(), buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        h.dead = true;
        return;
      }
      if (n == 0) {
        if (!h.responded) h.dead = true;
        return;
      }
      h.in.append(buf, static_cast<std::size_t>(n));
      if (h.in.size() > (64u << 10)) {  // nobody's GET is this long
        h.dead = true;
        return;
      }
      if (n < static_cast<ssize_t>(sizeof buf)) break;
    }
    if (h.responded || h.in.find("\r\n\r\n") == std::string::npos) return;
    const bool ok = h.in.rfind("GET ", 0) == 0;
    const std::string body = ok ? render_prometheus() : std::string();
    char head[160];
    std::snprintf(head, sizeof head,
                  "HTTP/1.0 %s\r\n"
                  "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                  "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                  ok ? "200 OK" : "405 Method Not Allowed", body.size());
    h.out = head;
    h.out += body;
    h.responded = true;
    h.flush();
  }

  void add_worker(bool respawn) {
    const std::uint64_t t0 = obs::now_ns();
    Zygote::WorkerHandle h = zygote->spawn_worker();
    set_nonblock(h.job_fd.get());
    auto w = std::make_unique<WorkerState>();
    w->pid = h.pid;
    w->conn.fd = std::move(h.job_fd);
    const std::uint64_t spawn_ns = obs::now_ns() - t0;
    obs::emit(obs::EventKind::kSrvWorkerSpawn, 0, 0,
              static_cast<std::uint64_t>(w->pid), spawn_ns, respawn ? 1 : 0);
    // Unconditional: the metrics endpoint must read true even when the
    // trace ring is dark (registry writes are cheap relaxed atomics).
    obs::MetricsRegistry::global()
        .histogram("srv_worker_spawn_ns")
        .record(spawn_ns);
    if (respawn) {
      worker_respawns.fetch_add(1);
    }
    worker_spawns.fetch_add(1);
    workers.push_back(std::move(w));
    workers_g.store(static_cast<std::uint32_t>(workers.size()));
  }

  // ---- bookkeeping -----------------------------------------------------

  void reap_orphans() {
    // As a child subreaper we inherit arms orphaned by a killed worker;
    // drain whatever has exited. May also reap the zygote if it died —
    // Zygote::shutdown tolerates that.
    int status = 0;
    while (::waitpid(-1, &status, WNOHANG) > 0) {
    }
  }

  void note_submitted() {
    accepted.fetch_add(1);
    std::uint64_t cur = inflight.fetch_add(1) + 1;
    std::uint64_t hw = inflight_hw.load();
    while (cur > hw && !inflight_hw.compare_exchange_weak(hw, cur)) {
    }
  }

  void note_replied() {
    inflight.fetch_sub(1);
  }

  ClientState* find_client(std::uint64_t id) {
    const auto it = clients.find(id);
    return it == clients.end() ? nullptr : it->second.get();
  }

  WorkerState* find_running(std::uint64_t client_id, std::uint64_t job_id) {
    for (auto& w : workers) {
      if (w->busy && w->client_id == client_id && w->job_id == job_id) {
        return w.get();
      }
    }
    return nullptr;
  }

  // ---- worker teardown -------------------------------------------------

  /// Takes one worker out of the pool. forced = kill the whole cohort
  /// (worker plus live arms, by process group) with TERM → grace → KILL;
  /// !forced = close the job fd and let it retire after EOF. Either way the
  /// governor ledger is reconciled so a killed cohort cannot leak tokens.
  void teardown_worker(std::size_t idx, bool forced) {
    std::unique_ptr<WorkerState> w = std::move(workers[idx]);
    workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(idx));
    workers_g.store(static_cast<std::uint32_t>(workers.size()));
    const pid_t pid = w->pid;
    w->conn.fd.reset();
    bool was_forced = forced;
    if (!forced) {
      // Clean retirement: EOF makes the worker _exit(0) after its current
      // read. It should be idle, so this is fast; escalate if it is not.
      if (!wait_pid_gone(pid, cfg.kill_grace)) was_forced = true;
    }
    if (was_forced && !pid_gone(pid)) {
      // kill(-pid) takes the worker's process group — the worker put itself
      // there with setpgid — so live arms die with it. The direct kill
      // covers the window before setpgid has run.
      ::kill(-pid, SIGTERM);
      ::kill(pid, SIGTERM);
      if (!wait_pid_gone(pid, cfg.kill_grace)) {
        ::kill(-pid, SIGKILL);
        ::kill(pid, SIGKILL);
        wait_pid_gone(pid, std::chrono::milliseconds(2000));
      }
    }
    reap_orphans();
    if (gov != nullptr) {
      gov->reconcile_dead_holders();
    }
    obs::emit(obs::EventKind::kSrvWorkerExit, 0, 0,
              static_cast<std::uint64_t>(pid), was_forced ? 1 : 0);
    if (!stopping) add_worker(/*respawn=*/true);
  }

  std::optional<std::size_t> worker_index(const WorkerState* w) const {
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (workers[i].get() == w) return i;
    }
    return std::nullopt;
  }

  // ---- scheduling ------------------------------------------------------

  WorkerState* idle_worker() {
    for (auto& w : workers) {
      if (!w->busy && !w->conn.dead) return w.get();
    }
    return nullptr;
  }

  /// Round-robin over client ids: resume after the last client served so a
  /// greedy client cannot starve the rest of the pool.
  ClientState* next_eligible_client() {
    auto eligible = [&](ClientState& c) {
      return !c.conn.dead && !c.queue.empty() &&
             c.running < cfg.per_client_running;
    };
    auto it = clients.upper_bound(rr_last);
    for (std::size_t seen = 0; seen < clients.size(); ++seen) {
      if (it == clients.end()) it = clients.begin();
      if (eligible(*it->second)) return it->second.get();
      ++it;
    }
    return nullptr;
  }

  void assign(ClientState& c, WorkerState& w) {
    QueuedJob job = std::move(c.queue.front());
    c.queue.pop_front();
    queued_g.fetch_sub(1);
    const std::uint64_t now = obs::now_ns();
    job.spec.queue_ns = now > job.submit_ns ? now - job.submit_ns : 0;
    w.conn.queue(make_frame(FrameType::kSubmit, job.job_id,
                            encode_job(job.spec), job.trace_id, job.span_id));
    w.busy = true;
    w.client_id = c.id;
    w.job_id = job.job_id;
    w.trace_id = job.trace_id;
    w.span_id = job.span_id;
    c.running += 1;
    running_g.fetch_add(1);
    obs::emit_trace(job.trace_id, obs::EventKind::kSrvAssign, 0, 0, job.job_id,
                    static_cast<std::uint64_t>(w.pid), job.spec.queue_ns);
    obs::MetricsRegistry::global()
        .histogram("srv_queue_wait_ns")
        .record(job.spec.queue_ns);
  }

  void schedule() {
    for (;;) {
      WorkerState* w = idle_worker();
      if (w == nullptr) return;
      ClientState* c = next_eligible_client();
      if (c == nullptr) return;
      rr_last = c->id;
      assign(*c, *w);
    }
  }

  // ---- client protocol -------------------------------------------------

  void reply_outcome(ClientState& c, std::uint64_t job_id,
                     const JobOutcome& out, std::uint64_t trace_id = 0,
                     std::uint64_t span_id = 0) {
    c.conn.queue(make_frame(FrameType::kResult, job_id, encode_outcome(out),
                            trace_id, span_id));
  }

  void handle_submit(ClientState& c, const Frame& f) {
    JobSpec spec = decode_job(f.payload);  // ProtocolError drops the client
    if (static_cast<int>(c.queue.size()) >= cfg.per_client_queue) {
      denied.fetch_add(1);
      client_counters[c.id].denied += 1;
      obs::emit_trace(f.trace_id, obs::EventKind::kSrvDeny, 0, 0, c.id,
                      f.job_id, cfg.retry_after_ms);
      obs::MetricsRegistry::global().counter("srv_denials").add();
      Bytes deny;
      ByteWriter bw(deny);
      bw.u32(cfg.retry_after_ms);
      bw.str("client queue full");
      c.conn.queue(make_frame(FrameType::kDeny, f.job_id, std::move(deny),
                              f.trace_id, f.span_id));
      return;
    }
    QueuedJob q;
    q.job_id = f.job_id;
    q.spec = std::move(spec);
    q.submit_ns = obs::now_ns();
    q.trace_id = f.trace_id;
    q.span_id = f.span_id;
    obs::emit_trace(f.trace_id, obs::EventKind::kSrvSubmit, 0, 0, c.id,
                    f.job_id, q.spec.arms.size());
    c.queue.push_back(std::move(q));
    queued_g.fetch_add(1);
    client_counters[c.id].submitted += 1;
    note_submitted();
  }

  void handle_cancel(ClientState& c, std::uint64_t job_id) {
    // Queued: just drop it and answer.
    for (auto it = c.queue.begin(); it != c.queue.end(); ++it) {
      if (it->job_id == job_id) {
        const std::uint64_t trace = it->trace_id;
        const std::uint64_t span = it->span_id;
        c.queue.erase(it);
        queued_g.fetch_sub(1);
        canceled.fetch_add(1);
        client_counters[c.id].canceled += 1;
        note_replied();
        obs::emit_trace(trace, obs::EventKind::kSrvCancel, 0, 0, job_id, 0);
        JobOutcome out;
        out.status = JobStatus::kCanceled;
        reply_outcome(c, job_id, out, trace, span);
        return;
      }
    }
    // Running: the worker is mid-race with no cancel channel of its own —
    // tear the cohort down and replace the worker.
    if (WorkerState* w = find_running(c.id, job_id)) {
      const auto idx = worker_index(w);
      const std::uint64_t trace = w->trace_id;
      const std::uint64_t span = w->span_id;
      c.running -= 1;
      running_g.fetch_sub(1);
      canceled.fetch_add(1);
      client_counters[c.id].canceled += 1;
      note_replied();
      obs::emit_trace(trace, obs::EventKind::kSrvCancel, 0, 0, job_id, 1);
      if (idx.has_value()) teardown_worker(*idx, /*forced=*/true);
      JobOutcome out;
      out.status = JobStatus::kCanceled;
      reply_outcome(c, job_id, out, trace, span);
      return;
    }
    // Unknown id (already completed, or never existed): idempotent no-op.
    obs::emit(obs::EventKind::kSrvCancel, 0, 0, job_id, 0);
  }

  WireStats make_stats() const {
    WireStats s;
    s.accepted = accepted.load();
    s.completed = completed.load();
    s.denied = denied.load();
    s.canceled = canceled.load();
    s.worker_spawns = worker_spawns.load();
    s.worker_respawns = worker_respawns.load();
    s.tokens_reclaimed =
        gov != nullptr ? gov->stats().reclaimed : 0;
    s.inflight_hw = inflight_hw.load();
    s.queued = queued_g.load();
    s.running = running_g.load();
    s.clients = clients_g.load();
    const std::uint32_t total = workers_g.load();
    const std::uint32_t busy = running_g.load();
    s.workers_busy = busy;
    s.workers_idle = total > busy ? total - busy : 0;
    return s;
  }

  /// Dispatches one decoded client frame. Returns false when the client
  /// must be dropped (protocol violation).
  bool on_client_frame(ClientState& c, const Frame& f) {
    switch (f.type) {
      case FrameType::kHello:
        return true;
      case FrameType::kSubmit:
        handle_submit(c, f);
        return true;
      case FrameType::kCancel:
        handle_cancel(c, f.job_id);
        return true;
      case FrameType::kStats:
        c.conn.queue(make_frame(FrameType::kStatsReply, f.job_id,
                                encode_stats(make_stats())));
        return true;
      case FrameType::kPing:
        c.conn.queue(make_frame(FrameType::kPong, f.job_id, {}));
        return true;
      default:
        return false;  // server-to-client types from a client: violation
    }
  }

  void read_client(ClientState& c) {
    std::uint8_t buf[64 << 10];
    for (;;) {
      const ssize_t n = ::read(c.conn.fd.get(), buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        c.conn.dead = true;
        return;
      }
      if (n == 0) {
        c.conn.dead = true;
        return;
      }
      c.conn.dec.feed(buf, static_cast<std::size_t>(n));
      try {
        while (std::optional<Frame> f = c.conn.dec.next()) {
          if (!on_client_frame(c, *f)) {
            c.conn.dead = true;
            return;
          }
        }
      } catch (const ProtocolError&) {
        c.conn.dead = true;  // malformed stream: swept after this pass
        return;
      }
      if (n < static_cast<ssize_t>(sizeof buf)) break;
    }
  }

  void read_worker(WorkerState& w) {
    std::uint8_t buf[64 << 10];
    for (;;) {
      const ssize_t n = ::read(w.conn.fd.get(), buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        w.conn.dead = true;
        return;
      }
      if (n == 0) {
        w.conn.dead = true;
        return;
      }
      w.conn.dec.feed(buf, static_cast<std::size_t>(n));
      try {
        while (std::optional<Frame> f = w.conn.dec.next()) {
          if (f->type == FrameType::kResult) {
            on_worker_result(w, *f);
          }
          // kPong and anything else: ignore.
        }
      } catch (const ProtocolError&) {
        w.conn.dead = true;  // swept as a worker death
        return;
      }
      if (n < static_cast<ssize_t>(sizeof buf)) break;
    }
  }

  void on_worker_result(WorkerState& w, const Frame& f) {
    if (!w.busy || f.job_id != w.job_id) return;  // stale/unknown: drop
    ClientState* c = find_client(w.client_id);
    w.busy = false;
    const std::uint64_t job_id = w.job_id;
    const std::uint64_t client_id = w.client_id;
    w.job_id = 0;
    w.client_id = 0;
    w.trace_id = 0;
    w.span_id = 0;
    running_g.fetch_sub(1);
    completed.fetch_add(1);
    client_counters[client_id].completed += 1;
    note_replied();
    if (c != nullptr) {
      c->running -= 1;
      // Echo the worker's header ids so the client-side frame carries the
      // same trace the records do.
      c->conn.queue(make_frame(FrameType::kResult, job_id, f.payload,
                               f.trace_id, f.span_id));
    }
    std::uint64_t exec_ns = 0;
    std::uint8_t status = 255;
    try {
      const JobOutcome out = decode_outcome(f.payload);
      exec_ns = out.exec_ns;
      status = static_cast<std::uint8_t>(out.status);
      obs::MetricsRegistry::global().histogram("srv_exec_ns").record(
          out.exec_ns);
    } catch (const ProtocolError&) {
      // Forwarded verbatim anyway; the client will see the same error.
    }
    obs::emit_trace(f.trace_id, obs::EventKind::kSrvResult, 0, 0, job_id,
                    status, exec_ns);
  }

  /// A busy worker's fd died (crash, kill, protocol garbage): the job it
  /// held is lost — tell the owner, then replace the worker.
  void sweep_dead_workers() {
    for (std::size_t i = workers.size(); i-- > 0;) {
      WorkerState& w = *workers[i];
      if (!w.conn.dead) continue;
      if (w.busy) {
        ClientState* c = find_client(w.client_id);
        running_g.fetch_sub(1);
        note_replied();
        if (c != nullptr) {
          c->running -= 1;
          JobOutcome out;
          out.status = JobStatus::kError;
          out.error = "worker died while running the job";
          reply_outcome(*c, w.job_id, out, w.trace_id, w.span_id);
          client_counters[w.client_id].completed += 1;
        }
      }
      teardown_worker(i, /*forced=*/true);
    }
  }

  void drop_client(std::uint64_t id) {
    const auto it = clients.find(id);
    if (it == clients.end()) return;
    ClientState& c = *it->second;
    const std::uint64_t dropped_queued = c.queue.size();
    std::uint64_t reaped_running = 0;
    for (std::size_t n = c.queue.size(); n > 0; --n) {
      queued_g.fetch_sub(1);
      canceled.fetch_add(1);
      note_replied();
    }
    client_counters[id].canceled += dropped_queued;
    c.queue.clear();
    // Kill every cohort still racing for this client: the results have no
    // recipient, and speculative children must not outlive their reason.
    for (std::size_t i = workers.size(); i-- > 0;) {
      WorkerState& w = *workers[i];
      if (w.busy && w.client_id == id) {
        running_g.fetch_sub(1);
        canceled.fetch_add(1);
        client_counters[id].canceled += 1;
        note_replied();
        ++reaped_running;
        teardown_worker(i, /*forced=*/true);
      }
    }
    obs::emit(obs::EventKind::kSrvClientGone, 0, 0, id, dropped_queued,
              reaped_running);
    clients.erase(it);
    clients_g.store(static_cast<std::uint32_t>(clients.size()));
  }

  void accept_from(int lfd, bool tcp) {
    for (;;) {
      const int fd = ::accept4(lfd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept error: back to poll
      }
      if (clients.size() >= cfg.max_clients) {
        ::close(fd);
        continue;
      }
      auto c = std::make_unique<ClientState>();
      c->id = next_client_id++;
      c->tcp = tcp;
      c->conn.fd = posix::Fd(fd);
      obs::emit(obs::EventKind::kSrvConnect, 0, 0, c->id, tcp ? 1 : 0);
      clients.emplace(c->id, std::move(c));
      clients_g.store(static_cast<std::uint32_t>(clients.size()));
    }
  }

  // ---- shutdown --------------------------------------------------------

  void shutdown_all() {
    stopping = true;
    std::uint64_t reaped_jobs = 0;

    // Cancel everything queued, with an answer while the socket still works.
    for (auto& [id, c] : clients) {
      for (const QueuedJob& q : c->queue) {
        JobOutcome out;
        out.status = JobStatus::kCanceled;
        out.error = "daemon shutting down";
        reply_outcome(*c, q.job_id, out, q.trace_id, q.span_id);
        canceled.fetch_add(1);
        client_counters[id].canceled += 1;
        note_replied();
        ++reaped_jobs;
      }
      queued_g.fetch_sub(static_cast<std::uint32_t>(c->queue.size()));
      c->queue.clear();
    }

    // Tear down every in-flight cohort and answer its owner.
    for (std::size_t i = workers.size(); i-- > 0;) {
      WorkerState& w = *workers[i];
      const bool busy = w.busy;
      if (busy) {
        if (ClientState* c = find_client(w.client_id)) {
          JobOutcome out;
          out.status = JobStatus::kCanceled;
          out.error = "daemon shutting down";
          reply_outcome(*c, w.job_id, out, w.trace_id, w.span_id);
          c->running -= 1;
        }
        running_g.fetch_sub(1);
        canceled.fetch_add(1);
        client_counters[w.client_id].canceled += 1;
        note_replied();
        ++reaped_jobs;
      }
      teardown_worker(i, /*forced=*/busy);
    }

    obs::emit(obs::EventKind::kSrvShutdown, 0, 0, reaped_jobs,
              static_cast<std::uint64_t>(workers.size()));

    // Best-effort flush of the goodbye frames, then hang up.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    for (;;) {
      bool pending = false;
      for (auto& [id, c] : clients) {
        if (!c->conn.dead && c->conn.wants_write()) {
          c->conn.flush();
          pending = pending || c->conn.wants_write();
        }
      }
      if (!pending || std::chrono::steady_clock::now() >= deadline) break;
      timespec ts{0, 1'000'000};
      ::nanosleep(&ts, nullptr);
    }
    clients.clear();
    clients_g.store(0);

    if (zygote.has_value()) {
      zygote->shutdown();
      zygote.reset();
    }

    // Final orphan drain: everything left reparents to us (subreaper) and
    // must be gone before we return — the no-orphans guarantee.
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    for (;;) {
      const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
      if (r < 0 && errno == ECHILD) break;
      if (r > 0) continue;
      if (std::chrono::steady_clock::now() >= drain_deadline) break;
      timespec ts{0, 1'000'000};
      ::nanosleep(&ts, nullptr);
    }
    if (gov != nullptr) gov->reconcile_dead_holders();

    listen_unix.reset();
    listen_tcp.reset();
    listen_metrics.reset();
    http_conns.clear();
    if (!cfg.socket_path.empty()) ::unlink(cfg.socket_path.c_str());
  }
};

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>()) {
  impl_->cfg = std::move(cfg);
}

Server::~Server() {
  if (impl_ != nullptr && impl_->started && !impl_->stopping) {
    try {
      impl_->shutdown_all();
    } catch (...) {
    }
  }
}

void Server::start() {
  Impl& s = *impl_;
  ALTX_REQUIRE(!s.started, "altxd: start() called twice");
  ALTX_REQUIRE(s.cfg.workers > 0, "altxd: need at least one worker");

  // Arms orphaned by a killed worker must reparent *here*, not to init,
  // or the zero-leaked-children guarantee is unenforceable.
#ifdef PR_SET_CHILD_SUBREAPER
  ::prctl(PR_SET_CHILD_SUBREAPER, 1);
#endif
  ::signal(SIGPIPE, SIG_IGN);

  if (s.cfg.gov_tokens > 0) {
    posix::GovernorConfig gc;
    gc.tokens = s.cfg.gov_tokens;
    s.owned_gov = std::make_unique<posix::SpeculationGovernor>(gc);
    s.gov = s.owned_gov.get();
  } else {
    // Resolve the env governor now, before the zygote fork, so its
    // MAP_SHARED pool is inherited by every worker.
    s.gov = posix::SpeculationGovernor::global();
  }

  // Zygote first, while the process is quiescent — no listeners, no client
  // buffers. Every worker forked later inherits this small image.
  ZygoteConfig zc;
  zc.heap_pages = s.cfg.heap_pages;
  zc.governor = s.gov;
  zc.predict = posix::SpeculationPlanner::env_enabled();
  s.zygote.emplace(Zygote::spawn(zc));

  const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd < 0) throw_errno("altxd: eventfd");
  s.stop_fd = posix::Fd(efd);
  s.stop_fd_raw.store(efd);

  s.bind_unix();
  s.bind_tcp();
  s.bind_metrics();

  for (int i = 0; i < s.cfg.workers; ++i) s.add_worker(/*respawn=*/false);
  s.started = true;
}

void Server::run() {
  Impl& s = *impl_;
  ALTX_REQUIRE(s.started, "altxd: run() before start()");

  enum class Tag : std::uint8_t {
    kStop,
    kUnix,
    kTcp,
    kMetrics,
    kClient,
    kWorker,
    kHttp
  };
  struct Slot {
    Tag tag;
    std::uint64_t id;  // client id or worker index
  };
  std::vector<pollfd> pfds;
  std::vector<Slot> slots;

  bool stop = false;
  while (!stop) {
    pfds.clear();
    slots.clear();
    pfds.push_back({s.stop_fd.get(), POLLIN, 0});
    slots.push_back({Tag::kStop, 0});
    if (s.listen_unix.valid()) {
      pfds.push_back({s.listen_unix.get(), POLLIN, 0});
      slots.push_back({Tag::kUnix, 0});
    }
    if (s.listen_tcp.valid()) {
      pfds.push_back({s.listen_tcp.get(), POLLIN, 0});
      slots.push_back({Tag::kTcp, 0});
    }
    if (s.listen_metrics.valid()) {
      pfds.push_back({s.listen_metrics.get(), POLLIN, 0});
      slots.push_back({Tag::kMetrics, 0});
    }
    for (auto& h : s.http_conns) {
      short ev = POLLIN;
      if (h->wants_write()) ev |= POLLOUT;
      pfds.push_back({h->fd.get(), ev, 0});
      slots.push_back({Tag::kHttp, 0});
    }
    for (auto& [id, c] : s.clients) {
      short ev = POLLIN;
      if (c->conn.wants_write()) ev |= POLLOUT;
      pfds.push_back({c->conn.fd.get(), ev, 0});
      slots.push_back({Tag::kClient, id});
    }
    for (std::size_t i = 0; i < s.workers.size(); ++i) {
      short ev = POLLIN;
      if (s.workers[i]->conn.wants_write()) ev |= POLLOUT;
      pfds.push_back({s.workers[i]->conn.fd.get(), ev, 0});
      slots.push_back({Tag::kWorker, i});
    }

    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) throw_errno("altxd: poll");

    if (rc <= 0) {
      // Housekeeping tick: reap stray exits, return dead holders' tokens.
      s.reap_orphans();
      if (s.gov != nullptr) s.gov->reconcile_dead_holders();
      s.schedule();
      continue;
    }

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short re = pfds[i].revents;
      if (re == 0) continue;
      switch (slots[i].tag) {
        case Tag::kStop:
          stop = true;
          break;
        case Tag::kUnix:
          s.accept_from(s.listen_unix.get(), /*tcp=*/false);
          break;
        case Tag::kTcp:
          s.accept_from(s.listen_tcp.get(), /*tcp=*/true);
          break;
        case Tag::kMetrics:
          s.accept_metrics();
          break;
        case Tag::kHttp: {
          // http_conns can shrink mid-pass; re-find by fd.
          HttpConn* h = nullptr;
          for (auto& cand : s.http_conns) {
            if (cand->fd.get() == pfds[i].fd) {
              h = cand.get();
              break;
            }
          }
          if (h == nullptr) break;
          if ((re & (POLLERR | POLLNVAL)) != 0) h->dead = true;
          if (!h->dead && (re & POLLOUT) != 0) h->flush();
          if (!h->dead && (re & (POLLIN | POLLHUP)) != 0) s.read_http(*h);
          break;
        }
        case Tag::kClient: {
          ClientState* c = s.find_client(slots[i].id);
          if (c == nullptr) break;  // dropped earlier this pass
          if ((re & (POLLERR | POLLNVAL)) != 0) c->conn.dead = true;
          if (!c->conn.dead && (re & POLLOUT) != 0) c->conn.flush();
          if (!c->conn.dead && (re & (POLLIN | POLLHUP)) != 0) {
            s.read_client(*c);
          }
          break;
        }
        case Tag::kWorker: {
          // Teardowns shuffle worker indices; re-find by fd.
          WorkerState* w = nullptr;
          for (auto& cand : s.workers) {
            if (cand->conn.fd.get() == pfds[i].fd) {
              w = cand.get();
              break;
            }
          }
          if (w == nullptr) break;
          if ((re & (POLLERR | POLLNVAL)) != 0) w->conn.dead = true;
          if (!w->conn.dead && (re & POLLOUT) != 0) w->conn.flush();
          if (!w->conn.dead && (re & (POLLIN | POLLHUP)) != 0) {
            s.read_worker(*w);
          }
          break;
        }
      }
      if (stop) break;
    }

    if (stop) break;

    s.sweep_dead_workers();
    s.http_conns.erase(
        std::remove_if(s.http_conns.begin(), s.http_conns.end(),
                       [](const std::unique_ptr<HttpConn>& h) {
                         return h->dead;
                       }),
        s.http_conns.end());
    std::vector<std::uint64_t> dead_clients;
    for (auto& [id, c] : s.clients) {
      if (c->conn.dead) dead_clients.push_back(id);
    }
    for (const std::uint64_t id : dead_clients) s.drop_client(id);
    s.schedule();
  }

  s.shutdown_all();
}

void Server::request_stop() noexcept {
  const int fd = impl_ != nullptr ? impl_->stop_fd_raw.load() : -1;
  if (fd < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(fd, &one, sizeof one);
}

ServerStats Server::stats() const { return impl_->make_stats(); }

posix::SpeculationGovernor* Server::governor() const noexcept {
  return impl_->gov;
}

int Server::tcp_port() const noexcept { return impl_->bound_tcp_port; }

int Server::metrics_port() const noexcept {
  return impl_->bound_metrics_port;
}

}  // namespace altx::server
