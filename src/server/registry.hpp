// HandlerRegistry: the daemon-side vocabulary of remote alternatives.
//
// A JobSpec arm names a handler; the registry maps that name to a callable
// the worker runs inside its forked arm. An embedding registers its
// handlers on the global registry *before* Server::start() — the zygote is
// forked at start, so workers inherit the registered table through fork and
// no registration crosses the wire.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace altx::posix {
class AltHeap;
}  // namespace altx::posix

namespace altx::server {

/// What a handler sees: its arm's argument blob, the worker's shared-state
/// arena when the job asked for one (nullptr otherwise), and which arm of
/// the block it is (1-based — replicas of one alternative share the index).
struct JobContext {
  const Bytes& args;
  posix::AltHeap* heap = nullptr;
  int arm_index = 0;
};

/// A handler is an alternative body: a value means the guard held, nullopt
/// means it failed. It runs in a forked arm, so side effects outside the
/// AltHeap die with the loser.
using Handler = std::function<std::optional<Bytes>(const JobContext&)>;

class HandlerRegistry {
 public:
  void add(const std::string& name, Handler fn);
  [[nodiscard]] const Handler* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return handlers_.size(); }

  /// The process-wide registry the daemon serves from.
  static HandlerRegistry& global();

 private:
  std::map<std::string, Handler> handlers_;
};

/// Registers the stock handlers every altxd ships with — enough for the
/// benches, tests, and smoke jobs without an embedding:
///
///   echo        return the args
///   fail        guard fails (nullopt)
///   sleep_ms    u32 LE milliseconds in args; sleep, then echo the args
///   sleep_fail  as sleep_ms, then the guard fails
///   burn_ms     u32 LE milliseconds of CPU spin, then echo
///   hang        block until killed (cancellation / teardown tests)
///   heap_fill   u32 LE page count in args; dirty that many arena pages
void register_builtin_handlers(HandlerRegistry& registry);

}  // namespace altx::server
