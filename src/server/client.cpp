#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "posix/fd.hpp"

namespace altx::server {

struct Client::State {
  posix::Fd fd;
  std::mutex write_mu;  // serializes whole frames onto the socket

  std::mutex mu;  // guards everything below
  std::condition_variable cv;
  bool reader_active = false;
  std::map<std::uint64_t, JobOutcome> done;
  std::optional<WireStats> stats_reply;
  std::uint64_t pongs = 0;
  FrameDecoder dec;
  std::uint64_t next_id = 1;
  bool broken = false;
  std::string broken_reason;

  void send_frame(const Frame& frame) {
    const Bytes raw = encode_frame(frame);
    std::lock_guard<std::mutex> lk(write_mu);
    posix::write_all(fd.get(), raw.data(), raw.size());
  }

  void dispatch(const Frame& frame) {
    switch (frame.type) {
      case FrameType::kResult:
        done[frame.job_id] = decode_outcome(frame.payload);
        break;
      case FrameType::kDeny: {
        // Fold a denial into the same outcome shape a waiter redeems.
        ByteReader r(frame.payload);
        JobOutcome out;
        out.status = JobStatus::kDenied;
        out.retry_after_ms = r.u32();
        out.error = r.str();
        done[frame.job_id] = std::move(out);
        break;
      }
      case FrameType::kStatsReply:
        stats_reply = decode_stats(frame.payload);
        break;
      case FrameType::kPong:
        ++pongs;
        break;
      default:
        break;  // unexpected server frame: ignore
    }
  }

  /// One step of the shared reader protocol, called under `lk`: the first
  /// waiter becomes the socket reader for a short slice, everyone else
  /// parks on the cv; any dispatched frame wakes the herd to re-check.
  void pump(std::unique_lock<std::mutex>& lk) {
    if (reader_active) {
      cv.wait_for(lk, std::chrono::milliseconds(50));
      return;
    }
    reader_active = true;
    lk.unlock();
    std::uint8_t buf[64 << 10];
    ssize_t n = -1;
    bool got_eof = false;
    std::string err;
    if (posix::wait_readable(fd.get(), 50)) {
      do {
        n = ::read(fd.get(), buf, sizeof buf);
      } while (n < 0 && errno == EINTR);
      if (n == 0) got_eof = true;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        err = std::strerror(errno);
      }
    }
    lk.lock();
    reader_active = false;
    if (got_eof) {
      broken = true;
      broken_reason = "daemon closed the connection";
    } else if (!err.empty()) {
      broken = true;
      broken_reason = "read: " + err;
    } else if (n > 0) {
      dec.feed(buf, static_cast<std::size_t>(n));
      try {
        while (std::optional<Frame> f = dec.next()) dispatch(*f);
      } catch (const UsageError& e) {  // ProtocolError or payload decode
        broken = true;
        broken_reason = e.what();
      }
    }
    cv.notify_all();
  }

  template <typename Pred>
  auto wait_until(Pred ready, std::chrono::milliseconds timeout,
                  const char* what) {
    const bool infinite = timeout.count() < 0;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      if (auto v = ready()) return std::move(*v);
      if (broken) {
        throw SystemError(std::string(what) + ": connection broken (" +
                              broken_reason + ")",
                          EPIPE);
      }
      if (!infinite && std::chrono::steady_clock::now() >= deadline) {
        throw SystemError(std::string(what) + ": timed out", ETIMEDOUT);
      }
      pump(lk);
    }
  }
};

Client::Client(std::unique_ptr<State> st) : st_(std::move(st)) {}
Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

int Client::fd() const noexcept { return st_->fd.get(); }

Client Client::connect_unix(const std::string& socket_path) {
  ALTX_REQUIRE(socket_path.size() < sizeof(sockaddr_un{}.sun_path),
               "client: socket path too long");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("client: socket(AF_UNIX)");
  posix::Fd owned(fd);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("client: connect(" + socket_path + ")");
  }
  auto st = std::make_unique<State>();
  st->fd = std::move(owned);
  return Client(std::move(st));
}

Client Client::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("client: socket(AF_INET)");
  posix::Fd owned(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = ::htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SystemError("client: bad address " + host, EINVAL);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("client: connect(" + host + ")");
  }
  auto st = std::make_unique<State>();
  st->fd = std::move(owned);
  return Client(std::move(st));
}

std::uint64_t Client::submit(const JobSpec& spec) {
  return submit(spec, 0, 0);
}

std::uint64_t Client::submit(const JobSpec& spec, std::uint64_t trace_id,
                             std::uint64_t span_id) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lk(st_->mu);
    ALTX_REQUIRE(!st_->broken, "client: connection broken");
    id = st_->next_id++;
  }
  Frame f;
  f.type = FrameType::kSubmit;
  f.job_id = id;
  f.trace_id = trace_id;
  f.span_id = span_id;
  f.payload = encode_job(spec);
  st_->send_frame(f);
  return id;
}

JobOutcome Client::wait(std::uint64_t job_id,
                        std::chrono::milliseconds timeout) {
  return st_->wait_until(
      [&]() -> std::optional<JobOutcome> {
        const auto it = st_->done.find(job_id);
        if (it == st_->done.end()) return std::nullopt;
        JobOutcome out = std::move(it->second);
        st_->done.erase(it);
        return out;
      },
      timeout, "client wait");
}

void Client::cancel(std::uint64_t job_id) {
  Frame f;
  f.type = FrameType::kCancel;
  f.job_id = job_id;
  st_->send_frame(f);
}

WireStats Client::stats(std::chrono::milliseconds timeout) {
  {
    std::lock_guard<std::mutex> lk(st_->mu);
    st_->stats_reply.reset();
  }
  Frame f;
  f.type = FrameType::kStats;
  st_->send_frame(f);
  return st_->wait_until(
      [&]() -> std::optional<WireStats> {
        if (!st_->stats_reply.has_value()) return std::nullopt;
        WireStats s = *st_->stats_reply;
        st_->stats_reply.reset();
        return s;
      },
      timeout, "client stats");
}

void Client::ping(std::chrono::milliseconds timeout) {
  std::uint64_t before;
  {
    std::lock_guard<std::mutex> lk(st_->mu);
    before = st_->pongs;
  }
  Frame f;
  f.type = FrameType::kPing;
  st_->send_frame(f);
  (void)st_->wait_until(
      [&]() -> std::optional<bool> {
        if (st_->pongs > before) return true;
        return std::nullopt;
      },
      timeout, "client ping");
}

}  // namespace altx::server
