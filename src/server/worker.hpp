// The zygote pool: pre-warmed job workers re-forked from a quiescent
// template.
//
// Why not fork workers from the daemon directly? Fork cost scales with the
// parent's address space — page tables, VMAs, the COW bookkeeping — and the
// daemon accretes client buffers, queues, and trace state. The zygote is
// forked at startup while the process is still small and then *never*
// grows: every worker is re-forked from that frozen template, so job spawn
// cost stays at the small-parent price however big the daemon gets
// (bench_e18_server measures the gap). Task Frames' decoupling of an
// activation from its caller's stack, done with processes.
//
// Lifecycle:
//
//   Server::start() ── fork ──> zygote (quiescent template)
//        │  spawn_worker():                │ fork per 'S' command
//        │   send 'S' + job fd ───────────>│
//        │<─ worker pid ──────────────────┌┴─> worker (setsid-free, own pgid)
//        │  job frames over the job fd ──────>│ posix::race<Bytes> per job,
//        │<───────────────── result frames ───│ arena reset between jobs
//
// The zygote ignores SIGCHLD (exited workers self-reap); workers restore
// SIGCHLD before racing (AltGroup must be able to waitpid its arms). A
// worker puts itself in its own process group so the daemon can take down
// the whole cohort — worker plus live arms — with one kill(-pid).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstddef>

#include "posix/fd.hpp"
#include "posix/governor.hpp"

namespace altx::server {

struct ZygoteConfig {
  /// Arena pages each worker owns for heap-carrying jobs (0 = no arena).
  std::size_t heap_pages = 64;

  /// Admission governor shared with the daemon (MAP_SHARED pool, inherited
  /// through the zygote fork). nullptr = races resolve global() as usual.
  posix::SpeculationGovernor* governor = nullptr;

  /// Plan jobs server-side (posix/predictor.hpp): JobSpec carries the
  /// client's site_id over the hop, so a daemon whose workers have a warm
  /// history store can stage or early-kill arms the client knows nothing
  /// about. Resolved from ALTX_PRED in the daemon process at startup; the
  /// workers inherit the decision (and the store) through the zygote fork.
  bool predict = false;
};

class Zygote {
 public:
  /// Forks the template now. Call early — before listeners, buffers, or
  /// clients exist — so the template (and every worker forked from it)
  /// stays small.
  static Zygote spawn(const ZygoteConfig& cfg);

  Zygote(Zygote&& other) noexcept;
  Zygote& operator=(Zygote&& other) noexcept;
  ~Zygote();

  struct WorkerHandle {
    pid_t pid = -1;
    posix::Fd job_fd;  // daemon end of the worker's job socketpair
  };

  /// Asks the template to fork a fresh worker; returns its pid and the fd
  /// the daemon sends job frames on. Closing the fd makes the worker exit
  /// cleanly after its current job.
  WorkerHandle spawn_worker();

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  [[nodiscard]] bool alive() const noexcept { return pid_ > 0; }

  /// Closes the control socket (template exits on EOF) and reaps it.
  void shutdown();

 private:
  Zygote() = default;

  void shutdown_nothrow() noexcept;

  posix::Fd control_;  // daemon end of the template's command socket
  pid_t pid_ = -1;
};

}  // namespace altx::server
