// The altxd client: submit alternative-block jobs to a speculation daemon.
//
// A Client owns one connection. submit()/wait() are the primitive pair —
// submit is pipelined (many jobs may be in flight per connection), wait
// demultiplexes results by job id, and both are thread-safe: whichever
// thread reaches wait() first becomes the socket reader and parks everyone
// else on a condition variable until their frame lands.
//
// server::race<T>() is the drop-in face: the same shape as posix::race<T>,
// but each alternative is a handler name + argument blob (a closure cannot
// cross a socket) and the fork happens in a pre-warmed daemon worker
// instead of here. A local call site redirects by filling
// RaceOptions::daemon_socket and naming its alternatives.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "posix/race.hpp"
#include "server/protocol.hpp"

namespace altx::server {

class Client {
 public:
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(const std::string& host, int port);

  ~Client();
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  /// Ships a job; returns the id wait() redeems. Never blocks on the
  /// daemon — admission denials come back as a kDenied outcome. The
  /// three-argument form stamps a cross-process trace id (and the client's
  /// parent span id) into the frame header so every ring record the daemon
  /// side emits for this job correlates back to this call site;
  /// server::race<T> mints these automatically.
  std::uint64_t submit(const JobSpec& spec);
  std::uint64_t submit(const JobSpec& spec, std::uint64_t trace_id,
                       std::uint64_t span_id);

  /// Blocks until `job_id`'s outcome (result, denial, or cancel ack)
  /// arrives. timeout < 0 waits forever; expiry throws SystemError
  /// (ETIMEDOUT). A denial is an outcome, not an error: status kDenied with
  /// retry_after_ms filled.
  JobOutcome wait(std::uint64_t job_id,
                  std::chrono::milliseconds timeout = std::chrono::milliseconds(-1));

  /// Asks the daemon to cancel a queued or running job. The job still
  /// resolves through wait() — with kCanceled if the cancel won the race
  /// against completion.
  void cancel(std::uint64_t job_id);

  /// Daemon counters and gauges, one round trip.
  WireStats stats(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10'000));

  /// Liveness round trip (kPing/kPong).
  void ping(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10'000));

  [[nodiscard]] int fd() const noexcept;

 private:
  struct State;
  explicit Client(std::unique_ptr<State> st);

  std::unique_ptr<State> st_;
};

/// One arm of a remote block: a handler registered in the daemon plus its
/// opaque argument blob (see server/registry.hpp for the contract).
struct RemoteAlt {
  std::string handler;
  Bytes args;
};

/// Extra remote-only detail a caller may want alongside the RaceResult.
struct RemoteRaceInfo {
  JobStatus status = JobStatus::kError;
  std::uint64_t queue_ns = 0;        // daemon queue wait
  std::uint64_t exec_ns = 0;         // worker race wall time
  std::uint32_t retry_after_ms = 0;  // kDenied backoff hint
  std::string error;
};

/// posix::race, executed by the daemon: nullopt when every guard failed,
/// the timeout expired, or admission was denied (info->status and
/// retry_after_ms distinguish the three). Daemon-side failures (unknown
/// handlers, worker death) throw SystemError — they are environmental, not
/// a FAIL verdict. Options honored remotely: timeout, site_id; heap != null
/// requests the worker's arena.
template <posix::RaceSerializable T>
std::optional<posix::RaceResult<T>> race(Client& client,
                                         const std::vector<RemoteAlt>& alts,
                                         const posix::RaceOptions& options = {},
                                         RemoteRaceInfo* info = nullptr) {
  ALTX_REQUIRE(!alts.empty(), "server::race: need at least one alternative");
  JobSpec spec;
  spec.timeout_ms = static_cast<std::uint32_t>(options.timeout.count());
  spec.site_id = options.site_id;
  if (options.heap != nullptr) {
    spec.heap_pages = static_cast<std::uint32_t>(options.heap->pages());
  }
  for (const RemoteAlt& a : alts) spec.arms.push_back({a.handler, a.args});

  // Cross-process tracing: the correlation id is minted here, at the
  // boundary where the block leaves this process, and rides the frame
  // header — so the daemon, its workers, and their speculative children
  // all stamp their ring records with it. The client-side kRaceBegin /
  // kRaceDecided pair records the submit→result wall in *this* process's
  // ring; altx-trace --stitch then tiles the daemon's queue and phase
  // spans under the same trace id.
  const std::uint64_t trace_id = obs::mint_trace_id();
  const std::uint64_t span_id = obs::mint_trace_id();
  const std::uint32_t cli_race = obs::next_race_id();
  obs::emit_trace(trace_id, obs::EventKind::kRaceBegin, cli_race, 0,
                  alts.size(), 1);

  const std::uint64_t id = client.submit(spec, trace_id, span_id);
  // The daemon enforces the job timeout in the worker; pad the client-side
  // wait so queueing cannot turn a slow daemon into a spurious ETIMEDOUT.
  const JobOutcome out =
      client.wait(id, options.timeout + std::chrono::milliseconds(30'000));

  if (info != nullptr) {
    info->status = out.status;
    info->queue_ns = out.queue_ns;
    info->exec_ns = out.exec_ns;
    info->retry_after_ms = out.retry_after_ms;
    info->error = out.error;
  }
  posix::WaitVerdict verdict;
  switch (out.status) {
    case JobStatus::kWon:
      verdict = posix::WaitVerdict::kWinner;
      break;
    case JobStatus::kAllFailed:
      verdict = posix::WaitVerdict::kAllFailed;
      break;
    case JobStatus::kTimeout:
      verdict = posix::WaitVerdict::kTimeout;
      break;
    default:
      verdict = posix::WaitVerdict::kUndecided;
      break;
  }
  obs::emit_trace(trace_id, obs::EventKind::kRaceDecided, cli_race, 0,
                  static_cast<std::uint64_t>(verdict), out.winner);
  if (options.report != nullptr) {
    posix::RaceReport& rep = *options.report;
    rep = {};
    rep.verdict = verdict;
  }
  if (out.status == JobStatus::kError) {
    throw SystemError("server::race: " + out.error, EIO);
  }
  if (out.status != JobStatus::kWon) return std::nullopt;
  posix::RaceResult<T> r;
  r.value = posix::race_decode<T>(out.value);
  r.winner = static_cast<int>(out.winner);
  return r;
}

/// Connect-per-call convenience for redirected call sites: requires
/// options.daemon_socket (see posix::RaceOptions).
template <posix::RaceSerializable T>
std::optional<posix::RaceResult<T>> race(const std::vector<RemoteAlt>& alts,
                                         const posix::RaceOptions& options,
                                         RemoteRaceInfo* info = nullptr) {
  ALTX_REQUIRE(!options.daemon_socket.empty(),
               "server::race: options.daemon_socket names the daemon");
  Client client = Client::connect_unix(options.daemon_socket);
  return race<T>(client, alts, options, info);
}

}  // namespace altx::server
