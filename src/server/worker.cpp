#include "server/worker.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "posix/alt_heap.hpp"
#include "posix/race.hpp"
#include "server/protocol.hpp"
#include "server/registry.hpp"

namespace altx::server {

namespace {

/// SCM_RIGHTS plumbing: the daemon hands the template one end of each
/// worker's job socketpair, because an fd created after the zygote fork
/// exists in the daemon only — descriptor passing is the one way to give
/// the template something it was not born holding.
void send_fd(int sock, int fd) {
  char cmd = 'S';
  iovec iov{&cmd, 1};
  union {
    cmsghdr align;
    char buf[CMSG_SPACE(sizeof(int))];
  } u{};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = u.buf;
  msg.msg_controllen = sizeof u.buf;
  cmsghdr* c = CMSG_FIRSTHDR(&msg);
  c->cmsg_level = SOL_SOCKET;
  c->cmsg_type = SCM_RIGHTS;
  c->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(c), &fd, sizeof(int));
  ssize_t n;
  do {
    n = ::sendmsg(sock, &msg, 0);
  } while (n < 0 && errno == EINTR);
  if (n != 1) throw_errno("zygote: sendmsg(job fd)");
}

int recv_fd(int sock) {
  char cmd = 0;
  iovec iov{&cmd, 1};
  union {
    cmsghdr align;
    char buf[CMSG_SPACE(sizeof(int))];
  } u{};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = u.buf;
  msg.msg_controllen = sizeof u.buf;
  ssize_t n;
  do {
    n = ::recvmsg(sock, &msg, 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return -1;  // EOF: the daemon is gone — template exits
  for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr;
       c = CMSG_NXTHDR(&msg, c)) {
    if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SCM_RIGHTS) {
      int fd = -1;
      std::memcpy(&fd, CMSG_DATA(c), sizeof(int));
      return fd;
    }
  }
  return -1;
}

JobOutcome run_job(const JobSpec& spec, const ZygoteConfig& cfg,
                   posix::AltHeap* heap) {
  JobOutcome out;
  out.queue_ns = spec.queue_ns;

  const HandlerRegistry& registry = HandlerRegistry::global();
  std::vector<const Handler*> handlers;
  handlers.reserve(spec.arms.size());
  int resolved = 0;
  for (const JobArm& arm : spec.arms) {
    const Handler* h = registry.find(arm.handler);
    handlers.push_back(h);
    if (h != nullptr) ++resolved;
  }
  if (resolved == 0) {
    out.status = JobStatus::kError;
    out.error = "no arm names a registered handler";
    return out;
  }

  posix::AltHeap* job_heap = nullptr;
  if (spec.heap_pages > 0) {
    if (heap == nullptr || spec.heap_pages > heap->pages()) {
      out.status = JobStatus::kError;
      out.error = "job wants " + std::to_string(spec.heap_pages) +
                  " arena pages, worker has " +
                  std::to_string(heap == nullptr ? 0 : heap->pages());
      return out;
    }
    job_heap = heap;
  }

  std::vector<posix::AlternativeFn<Bytes>> alts;
  alts.reserve(spec.arms.size());
  for (std::size_t i = 0; i < spec.arms.size(); ++i) {
    const Handler* h = handlers[i];
    const Bytes& args = spec.arms[i].args;
    const int arm_index = static_cast<int>(i) + 1;
    alts.push_back([h, &args, job_heap, arm_index]() -> std::optional<Bytes> {
      if (h == nullptr) return std::nullopt;  // unknown handler = failed guard
      JobContext ctx{args, job_heap, arm_index};
      return (*h)(ctx);
    });
  }

  posix::RaceReport report;
  posix::RaceOptions o;
  o.timeout = std::chrono::milliseconds(spec.timeout_ms);
  o.heap = job_heap;
  o.governor = cfg.governor;
  o.site_id = spec.site_id;
  o.predict = cfg.predict;  // plan server-side: the job shipped its site_id
  o.report = &report;

  const std::uint64_t t0 = obs::now_ns();
  std::optional<posix::RaceResult<Bytes>> r;
  try {
    r = posix::race<Bytes>(alts, o);
  } catch (const std::exception& e) {
    out.status = JobStatus::kError;
    out.error = e.what();
    return out;
  }
  out.exec_ns = obs::now_ns() - t0;

  // Attribute the daemon-side queue wait to the race the job became: a
  // self-contained span pair (ends carry their duration), emitted after
  // the fact because the race id does not exist until the block runs.
  if (spec.queue_ns > 0 && report.race_id != 0 && obs::enabled()) {
    obs::emit(obs::EventKind::kPhaseBegin, report.race_id, 0,
              static_cast<std::uint64_t>(obs::Phase::kSrvQueue));
    obs::emit(obs::EventKind::kPhaseEnd, report.race_id, 0,
              static_cast<std::uint64_t>(obs::Phase::kSrvQueue),
              spec.queue_ns);
  }

  // Reset the arena for the next job — the warm-worker equivalent of a
  // fresh fork's zero pages (tracking is off in the worker, so this is a
  // plain write).
  if (job_heap != nullptr) {
    std::memset(job_heap->base(), 0, job_heap->size_bytes());
  }

  if (r.has_value()) {
    out.status = JobStatus::kWon;
    out.winner = static_cast<std::uint32_t>(r->winner);
    out.value = std::move(r->value);
  } else if (report.verdict == posix::WaitVerdict::kTimeout) {
    out.status = JobStatus::kTimeout;
  } else {
    out.status = JobStatus::kAllFailed;
  }
  return out;
}

[[noreturn]] void worker_main(int job_fd, const ZygoteConfig& cfg,
                              posix::AltHeap* heap) {
  // The template ignores SIGCHLD so exited siblings self-reap; AltGroup
  // needs real waitpid semantics back before it can reap arms.
  ::signal(SIGCHLD, SIG_DFL);
  ::signal(SIGPIPE, SIG_IGN);
  // Own process group: the daemon tears down the whole cohort — worker
  // plus any live arms — with one kill(-pid).
  (void)::setpgid(0, 0);

  FrameDecoder dec;
  std::uint8_t buf[64 << 10];
  for (;;) {
    const ssize_t n = ::read(job_fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(0);
    }
    if (n == 0) ::_exit(0);  // daemon closed the job fd: clean retirement
    dec.feed(buf, static_cast<std::size_t>(n));
    try {
      while (std::optional<Frame> f = dec.next()) {
        if (f->type == FrameType::kPing) {
          Frame pong_frame;
          pong_frame.type = FrameType::kPong;
          pong_frame.job_id = f->job_id;
          const Bytes pong = encode_frame(pong_frame);
          posix::write_all(job_fd, pong.data(), pong.size());
          continue;
        }
        if (f->type != FrameType::kSubmit) ::_exit(2);
        // Adopt the client's trace id for the job's whole lifetime in this
        // process: the race's own records, the after-the-fact srv_queue
        // span, and — because the ambient id is inherited through fork —
        // every record the speculative arms emit, including the last gasp
        // of a loser that dies by SIGKILL. Cleared after the reply so a
        // recycled worker cannot leak one job's id into the next.
        obs::set_current_trace(f->trace_id);
        JobOutcome out;
        try {
          out = run_job(decode_job(f->payload), cfg, heap);
        } catch (const std::exception& e) {
          out.status = JobStatus::kError;
          out.error = e.what();
        }
        Frame reply_frame;
        reply_frame.type = FrameType::kResult;
        reply_frame.job_id = f->job_id;
        reply_frame.trace_id = f->trace_id;
        reply_frame.span_id = f->span_id;
        reply_frame.payload = encode_outcome(out);
        const Bytes reply = encode_frame(reply_frame);
        obs::set_current_trace(0);
        posix::write_all(job_fd, reply.data(), reply.size());
      }
    } catch (const ProtocolError&) {
      ::_exit(2);  // the daemon never sends garbage; treat as fatal
    } catch (const std::exception&) {
      ::_exit(2);
    }
  }
}

[[noreturn]] void zygote_main(int control_fd, ZygoteConfig cfg) {
  // Exited workers self-reap: the template never waits on them, and a
  // zombie pile-up in the template would defeat its whole quiescent point.
  ::signal(SIGCHLD, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);

  // The arena is created once, here, so every worker inherits the mapping
  // COW — arena setup is part of what the pool amortizes.
  std::unique_ptr<posix::AltHeap> heap;
  if (cfg.heap_pages > 0) {
    heap = std::make_unique<posix::AltHeap>(cfg.heap_pages);
  }

  for (;;) {
    const int job_fd = recv_fd(control_fd);
    if (job_fd < 0) ::_exit(0);  // daemon hung up
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(control_fd);
      worker_main(job_fd, cfg, heap.get());
    }
    ::close(job_fd);
    std::int64_t reply = pid > 0 ? pid : -1;
    posix::write_all(control_fd, &reply, sizeof reply);
  }
}

}  // namespace

Zygote Zygote::spawn(const ZygoteConfig& cfg) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw_errno("zygote: socketpair(control)");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw_errno("zygote: fork(template)");
  }
  if (pid == 0) {
    ::close(sv[0]);
    zygote_main(sv[1], cfg);
  }
  ::close(sv[1]);
  Zygote z;
  z.control_ = posix::Fd(sv[0]);
  z.pid_ = pid;
  return z;
}

Zygote::Zygote(Zygote&& other) noexcept
    : control_(std::move(other.control_)), pid_(other.pid_) {
  other.pid_ = -1;
}

Zygote& Zygote::operator=(Zygote&& other) noexcept {
  if (this != &other) {
    shutdown_nothrow();
    control_ = std::move(other.control_);
    pid_ = other.pid_;
    other.pid_ = -1;
  }
  return *this;
}

Zygote::~Zygote() { shutdown_nothrow(); }

void Zygote::shutdown_nothrow() noexcept {
  if (pid_ <= 0) {
    control_.reset();
    return;
  }
  try {
    shutdown();
  } catch (...) {
    pid_ = -1;
  }
}

void Zygote::shutdown() {
  if (pid_ <= 0) return;
  control_.reset();  // EOF: the template's recv_fd returns -1 and it exits
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  pid_ = -1;
}

Zygote::WorkerHandle Zygote::spawn_worker() {
  ALTX_REQUIRE(control_.valid(), "zygote: not running");
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw_errno("zygote: socketpair(worker)");
  }
  posix::Fd ours(sv[0]);
  posix::Fd theirs(sv[1]);
  send_fd(control_.get(), theirs.get());
  theirs.reset();
  std::int64_t pid = 0;
  if (!posix::read_exact(control_.get(), &pid, sizeof pid) || pid <= 0) {
    throw SystemError("zygote: template failed to deliver a worker", EPIPE);
  }
  WorkerHandle h;
  h.pid = static_cast<pid_t>(pid);
  h.job_fd = std::move(ours);
  return h;
}

}  // namespace altx::server
