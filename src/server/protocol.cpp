#include "server/protocol.hpp"

#include <cstring>

namespace altx::server {

namespace {

/// Re-throws ByteReader truncation (UsageError) as ProtocolError so a
/// malformed payload is attributable to the peer, not to API misuse.
template <typename Fn>
auto guard_decode(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const ProtocolError&) {
    throw;
  } catch (const UsageError& e) {
    throw ProtocolError(std::string(what) + ": " + e.what());
  }
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kPong);
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kSubmit: return "submit";
    case FrameType::kResult: return "result";
    case FrameType::kDeny: return "deny";
    case FrameType::kCancel: return "cancel";
    case FrameType::kStats: return "stats";
    case FrameType::kStatsReply: return "stats_reply";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
  }
  return "?";
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kWon: return "won";
    case JobStatus::kAllFailed: return "all_failed";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kCanceled: return "canceled";
    case JobStatus::kDenied: return "denied";
    case JobStatus::kError: return "error";
  }
  return "?";
}

Bytes encode_frame(const Frame& frame) {
  ALTX_REQUIRE(frame.payload.size() <= kMaxFramePayload,
               "encode_frame: payload exceeds kMaxFramePayload");
  Bytes out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  ByteWriter w(out);
  w.u32(kFrameMagic);
  w.u8(kProtoVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u8(static_cast<std::uint8_t>(frame.flags & 0xff));
  w.u8(static_cast<std::uint8_t>(frame.flags >> 8));
  w.u64(frame.job_id);
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.u64(frame.trace_id);
  w.u64(frame.span_id);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t n) {
  // Reclaim the consumed prefix before growing; keeps the buffer bounded
  // by one partial frame plus whatever the last read() returned.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ >= (16u << 10)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  ByteReader r(buf_.data() + consumed_, avail);
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw ProtocolError("frame: bad magic");
  }
  const std::uint8_t version = r.u8();
  if (version != kProtoVersion) {
    throw ProtocolError("frame: protocol version " + std::to_string(version) +
                        ", expected " + std::to_string(kProtoVersion));
  }
  const std::uint8_t type = r.u8();
  if (!valid_type(type)) {
    throw ProtocolError("frame: unknown type " + std::to_string(type));
  }
  const std::uint16_t flags = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(r.u8()) |
      (static_cast<std::uint16_t>(r.u8()) << 8));
  const std::uint64_t job_id = r.u64();
  const std::uint32_t payload_len = r.u32();
  if (payload_len > kMaxFramePayload) {
    throw ProtocolError("frame: payload " + std::to_string(payload_len) +
                        " bytes exceeds cap");
  }
  const std::uint64_t trace_id = r.u64();
  const std::uint64_t span_id = r.u64();
  if (avail < kFrameHeaderBytes + payload_len) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.flags = flags;
  f.job_id = job_id;
  f.trace_id = trace_id;
  f.span_id = span_id;
  const std::uint8_t* body = buf_.data() + consumed_ + kFrameHeaderBytes;
  f.payload.assign(body, body + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return f;
}

std::size_t FrameDecoder::buffered() const noexcept {
  return buf_.size() - consumed_;
}

Bytes encode_job(const JobSpec& spec) {
  Bytes out;
  ByteWriter w(out);
  w.u32(spec.timeout_ms);
  w.u64(spec.site_id);
  w.u32(spec.heap_pages);
  w.u64(spec.queue_ns);
  w.u32(static_cast<std::uint32_t>(spec.arms.size()));
  for (const JobArm& arm : spec.arms) {
    w.str(arm.handler);
    w.blob(arm.args.data(), arm.args.size());
  }
  return out;
}

JobSpec decode_job(const Bytes& payload) {
  return guard_decode("job spec", [&] {
    ByteReader r(payload);
    JobSpec spec;
    spec.timeout_ms = r.u32();
    spec.site_id = r.u64();
    spec.heap_pages = r.u32();
    spec.queue_ns = r.u64();
    const std::uint32_t n = r.u32();
    if (n == 0 || n > kMaxArms) {
      throw ProtocolError("job spec: " + std::to_string(n) +
                          " arms (1.." + std::to_string(kMaxArms) +
                          " allowed)");
    }
    spec.arms.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      JobArm arm;
      arm.handler = r.str();
      if (arm.handler.empty() || arm.handler.size() > kMaxHandlerName) {
        throw ProtocolError("job spec: bad handler name length " +
                            std::to_string(arm.handler.size()));
      }
      arm.args = r.blob();
      spec.arms.push_back(std::move(arm));
    }
    if (!r.done()) {
      throw ProtocolError("job spec: trailing bytes");
    }
    return spec;
  });
}

Bytes encode_outcome(const JobOutcome& outcome) {
  Bytes out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(outcome.status));
  w.u32(outcome.winner);
  w.blob(outcome.value.data(), outcome.value.size());
  w.u64(outcome.queue_ns);
  w.u64(outcome.exec_ns);
  w.u32(outcome.retry_after_ms);
  w.str(outcome.error);
  return out;
}

JobOutcome decode_outcome(const Bytes& payload) {
  return guard_decode("job outcome", [&] {
    ByteReader r(payload);
    JobOutcome o;
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(JobStatus::kError)) {
      throw ProtocolError("job outcome: unknown status " +
                          std::to_string(status));
    }
    o.status = static_cast<JobStatus>(status);
    o.winner = r.u32();
    o.value = r.blob();
    o.queue_ns = r.u64();
    o.exec_ns = r.u64();
    o.retry_after_ms = r.u32();
    o.error = r.str();
    if (!r.done()) {
      throw ProtocolError("job outcome: trailing bytes");
    }
    return o;
  });
}

Bytes encode_stats(const WireStats& stats) {
  Bytes out;
  ByteWriter w(out);
  w.u64(stats.accepted);
  w.u64(stats.completed);
  w.u64(stats.denied);
  w.u64(stats.canceled);
  w.u64(stats.worker_spawns);
  w.u64(stats.worker_respawns);
  w.u64(stats.tokens_reclaimed);
  w.u64(stats.inflight_hw);
  w.u32(stats.queued);
  w.u32(stats.running);
  w.u32(stats.clients);
  w.u32(stats.workers_idle);
  w.u32(stats.workers_busy);
  return out;
}

WireStats decode_stats(const Bytes& payload) {
  return guard_decode("stats", [&] {
    ByteReader r(payload);
    WireStats s;
    s.accepted = r.u64();
    s.completed = r.u64();
    s.denied = r.u64();
    s.canceled = r.u64();
    s.worker_spawns = r.u64();
    s.worker_respawns = r.u64();
    s.tokens_reclaimed = r.u64();
    s.inflight_hw = r.u64();
    s.queued = r.u32();
    s.running = r.u32();
    s.clients = r.u32();
    s.workers_idle = r.u32();
    s.workers_busy = r.u32();
    if (!r.done()) {
      throw ProtocolError("stats: trailing bytes");
    }
    return s;
  });
}

}  // namespace altx::server
