// Recovery blocks (paper section 5.1; Horning et al. 1974).
//
// A recovery block is a set of alternative implementations of one
// specification plus a boolean acceptance test. Sequentially, the state is
// checkpointed, the primary alternate runs, and the acceptance test either
// releases the results or rolls the state back and tries the next alternate.
//
// This module provides the sequential discipline and its concurrent
// transformation per the paper: all alternates race in forked processes,
// the acceptance test runs inside each child (self-checking computation,
// section 5.1.1), and the first alternate to pass the test is selected —
// "fastest-first through failures". Losers' state changes are never
// observable, which is exactly what the COW process isolation provides.
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "posix/race.hpp"

namespace altx::rb {

/// Statistics from one execution of a block.
struct RbReport {
  bool succeeded = false;
  std::size_t alternate = 0;     // which alternate produced the result (0-based)
  std::size_t attempts = 0;      // sequential: bodies executed; concurrent: 1
  double elapsed_ms = 0;
};

/// A recovery block over a trivially copyable state record. The state is the
/// external variables the alternates update; copyability gives checkpoint
/// and rollback for the sequential discipline and result transfer for the
/// concurrent one.
template <typename State>
  requires std::is_trivially_copyable_v<State>
class RecoveryBlock {
 public:
  using Alternate = std::function<void(State&)>;
  using AcceptanceTest = std::function<bool(const State&)>;

  /// Alternates are ordered by estimated reliability, primary first
  /// (section 5.1: "typically ordered on the basis of observed or estimated
  /// characteristics such as reliability and execution speed").
  void add_alternate(Alternate a) { alternates_.push_back(std::move(a)); }

  void set_acceptance(AcceptanceTest t) { accept_ = std::move(t); }

  [[nodiscard]] std::size_t size() const { return alternates_.size(); }

  /// The classical sequential discipline: checkpoint, try, test, roll back.
  RbReport run_sequential(State& state) const {
    check_ready();
    RbReport rep;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < alternates_.size(); ++i) {
      const State checkpoint = state;  // establish the recovery point
      ++rep.attempts;
      bool ok = false;
      try {
        alternates_[i](state);
        ok = accept_(state);
      } catch (...) {
        ok = false;
      }
      if (ok) {
        rep.succeeded = true;
        rep.alternate = i;
        break;
      }
      state = checkpoint;  // roll back and try the next alternate
    }
    rep.elapsed_ms = ms_since(t0);
    return rep;
  }

  /// The paper's transformation: run every alternate concurrently in its own
  /// process; each self-checks with the acceptance test; fastest passing
  /// alternate is absorbed. On total failure the state is unchanged.
  RbReport run_concurrent(State& state,
                          std::chrono::milliseconds timeout =
                              std::chrono::milliseconds(10'000)) const {
    check_ready();
    struct Outcome {
      State state;
      std::uint32_t alternate;
    };
    std::vector<posix::AlternativeFn<Outcome>> alts;
    for (std::size_t i = 0; i < alternates_.size(); ++i) {
      const Alternate& body = alternates_[i];
      const AcceptanceTest& accept = accept_;
      const State& initial = state;
      alts.push_back([&body, &accept, &initial, i]() -> std::optional<Outcome> {
        State local = initial;  // the fork gave us a COW copy anyway
        body(local);
        if (!accept(local)) return std::nullopt;
        return Outcome{local, static_cast<std::uint32_t>(i)};
      });
    }
    posix::RaceOptions opts;
    opts.timeout = timeout;
    RbReport rep;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = posix::race<Outcome>(alts, opts);
    rep.elapsed_ms = ms_since(t0);
    rep.attempts = 1;
    if (r.has_value()) {
      rep.succeeded = true;
      rep.alternate = r->value.alternate;
      state = r->value.state;  // absorb the winner's state changes
    }
    return rep;
  }

 private:
  void check_ready() const {
    ALTX_REQUIRE(!alternates_.empty(), "RecoveryBlock: no alternates");
    ALTX_REQUIRE(static_cast<bool>(accept_), "RecoveryBlock: no acceptance test");
  }

  static double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  std::vector<Alternate> alternates_;
  AcceptanceTest accept_;
};

/// Fault injection: wraps an alternate so it produces a wrong result (which
/// the acceptance test must catch) with probability `fault_prob`, drawn
/// deterministically from `seed` and an invocation counter kept in the state
/// itself — the wrapped body stays a pure function of its inputs, so the
/// concurrent and sequential disciplines see identical fault patterns.
template <typename State>
typename RecoveryBlock<State>::Alternate with_faults(
    typename RecoveryBlock<State>::Alternate body,
    std::function<void(State&)> corrupt, double fault_prob, std::uint64_t seed) {
  return [body = std::move(body), corrupt = std::move(corrupt), fault_prob,
          seed](State& s) {
    body(s);
    Rng rng(seed);
    if (rng.chance(fault_prob)) corrupt(s);
  };
}

}  // namespace altx::rb
