// Machine models for the kernel simulator.
//
// The paper's performance analysis (sections 4.2-4.4) is parameterised by a
// handful of hardware constants: fork cost, page-copy service rate, page
// size, CPU count, and network characteristics for the distributed case. The
// two calibrated models below reproduce the paper's measured workstations:
//
//   AT&T 3B2/310:  fork() of a 320 KB address space (no updates) ~ 31 ms;
//                  page copying served at 326 2K-pages/second.
//   HP 9000/350:   same fork ~ 12 ms; 1034 4K-pages/second.
//
// The split of the fork cost into a base and a per-page map cost is our
// choice (the paper reports only the total); both models reproduce the
// measured total for the measured address-space size.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "common/sim_time.hpp"

namespace altx::sim {

struct MachineModel {
  // Topology.
  int nodes = 1;          // distinct machines (distributed case when > 1)
  int cpus_per_node = 4;  // processors per machine

  // Memory system.
  std::size_t page_size = 4096;  // bytes per page (costs only; content is words)
  SimTime fork_base = 2 * kMsec;   // fixed part of spawning a process
  SimTime per_page_map = 100;      // us to set up one COW page-table entry
  SimTime page_copy = 967;         // us to copy one page on a write fault

  // Scheduling.
  SimTime quantum = 10 * kMsec;   // round-robin time slice
  SimTime ctx_switch = 50;        // us per context switch

  // Selection / synchronization.
  SimTime commit_cost = 200;      // us to swap the parent's page pointer
  SimTime kill_cost = 300;        // us to issue one sibling termination

  // Network (used when nodes > 1 and by the consensus layer).
  SimTime net_latency = 2 * kMsec;        // one-way propagation
  double net_bytes_per_usec = 1.25;       // ~10 Mbit/s Ethernet of the era
  SimTime rfork_base = 100 * kMsec;       // checkpoint bootstrap cost

  [[nodiscard]] int total_cpus() const { return nodes * cpus_per_node; }

  [[nodiscard]] SimTime fork_cost(std::size_t pages_mapped) const {
    return fork_base + per_page_map * static_cast<SimTime>(pages_mapped);
  }

  /// Cost of shipping `bytes` over the network, one way.
  [[nodiscard]] SimTime transfer_cost(std::size_t bytes) const {
    return net_latency +
           static_cast<SimTime>(static_cast<double>(bytes) / net_bytes_per_usec);
  }

  /// Cost of a remote fork: checkpoint the whole image and ship it
  /// (section 4.4: "the major cost was creating a checkpoint of the process
  /// in its entirety").
  [[nodiscard]] SimTime rfork_cost(std::size_t image_bytes) const {
    return rfork_base + transfer_cost(image_bytes) +
           page_copy * static_cast<SimTime>(image_bytes / page_size);
  }

  void validate() const {
    ALTX_REQUIRE(nodes >= 1 && cpus_per_node >= 1, "MachineModel: need >= 1 cpu");
    ALTX_REQUIRE(page_size >= 64, "MachineModel: page_size too small");
    ALTX_REQUIRE(quantum > 0, "MachineModel: quantum must be positive");
    ALTX_REQUIRE(net_bytes_per_usec > 0, "MachineModel: bandwidth must be positive");
  }

  /// AT&T 3B2/310 (WE 32101 MMU), calibrated to section 4.4.
  /// 320 KB / 2 KB pages = 160 pages; 10 ms + 160 * 131.25 us = 31 ms.
  static MachineModel att3b2(int cpus = 1, int nodes = 1) {
    MachineModel m;
    m.nodes = nodes;
    m.cpus_per_node = cpus;
    m.page_size = 2048;
    m.fork_base = 10 * kMsec;
    m.per_page_map = 131;              // us; 160 pages -> ~21 ms mapping
    m.page_copy = 1000000 / 326;       // 3067 us per 2K page
    return m;
  }

  /// HP 9000/350, calibrated to section 4.4.
  /// 320 KB / 4 KB pages = 80 pages; 4 ms + 80 * 100 us = 12 ms.
  static MachineModel hp9000_350(int cpus = 1, int nodes = 1) {
    MachineModel m;
    m.nodes = nodes;
    m.cpus_per_node = cpus;
    m.page_size = 4096;
    m.fork_base = 4 * kMsec;
    m.per_page_map = 100;
    m.page_copy = 1000000 / 1034;      // 967 us per 4K page
    return m;
  }

  /// A roomy shared-memory multiprocessor for speedup-shape studies.
  static MachineModel shared_memory_mp(int cpus) {
    MachineModel m = hp9000_350(cpus, 1);
    return m;
  }

  /// A small network of workstations (distributed case, section 4.4's rfork
  /// environment: ~1 s to rfork a 70 KB process, ~1.3 s observed end to end).
  static MachineModel workstation_lan(int nodes, int cpus_per_node = 1) {
    MachineModel m = hp9000_350(cpus_per_node, nodes);
    m.rfork_base = 400 * kMsec;   // checkpoint-to-file bootstrap
    m.net_latency = 5 * kMsec;
    m.net_bytes_per_usec = 0.15;  // effective NFS-backed transfer rate
    return m;
  }
};

}  // namespace altx::sim
