// Programs for simulated processes.
//
// A simulated process executes a straight-line list of operations. The op
// set is exactly what the paper's machinery needs: compute, page references
// (which drive COW behaviour), the alternative block (alt_spawn + alt_wait),
// guards, predicated IPC, and source-device I/O. Workload generators emit
// unrolled op lists, so no general control flow is needed; the only
// "branches" are the ones the paper's constructs introduce (which alternative
// wins, does the block fail).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "sim/page.hpp"

namespace altx::sim {

struct Program;
using ProgramRef = std::shared_ptr<const Program>;

/// Burn CPU for a fixed duration (the tau of a computation step).
struct ComputeOp {
  SimTime duration = 0;
};

/// Reference memory. A write stores `value` and may trigger a COW fault; a
/// read only accounts the reference.
struct TouchOp {
  VPage page = 0;
  std::uint32_t word = 0;
  bool write = false;
  std::uint64_t value = 0;
};

/// Evaluate a guard over the process's current memory; if false the process
/// aborts without synchronizing (the ENSURE of the alternative block; the
/// paper has the child evaluate it, "thus speeding up spawning and
/// synchronization").
struct GuardOp {
  std::function<bool(const AddressSpace&)> ok;
};

/// The alternative block: spawn one child per alternate program, then
/// alt_wait(timeout). First child to finish with its guard satisfied wins and
/// is absorbed; if all abort or the timeout expires, `on_fail` runs (or, if
/// null, the process itself aborts — failure propagates to the enclosing
/// block).
struct AltBlockOp {
  std::vector<ProgramRef> alternates;
  SimTime timeout = 0;  // <= 0 means wait forever
  ProgramRef on_fail;

  /// Optional pre-spawn guards, one per alternate (empty = none). The paper:
  /// "the GUARD can be executed before spawning the alternative, in the
  /// child process, at the synchronization point, or at any combination of
  /// these places, for redundancy." A false pre-guard skips the fork — the
  /// cheapest possible elimination.
  std::vector<std::function<bool(const AddressSpace&)>> pre_guards;
};

/// Bind a port so other processes can send to this one by name.
struct BindOp {
  Port port = 0;
};

/// Send a predicated message to every live world bound to `port`.
struct SendOp {
  Port port = 0;
  Bytes data;
};

/// Receive the next accepted message; its first 8 payload bytes are stored at
/// (page, word) so later guards can branch on it. Blocks until a message is
/// available; a non-positive timeout waits forever, otherwise the op times
/// out and stores `timeout_value` instead.
struct RecvOp {
  VPage page = 0;
  std::uint32_t word = 0;
  SimTime timeout = 0;
  std::uint64_t timeout_value = 0;
};

/// Write to a source device (non-idempotent, observable). Blocked while the
/// process runs under unresolved predicates.
struct SourceWriteOp {
  std::uint32_t device = 0;
  Bytes data;
};

/// Read key `key` from a source device, storing the (64-bit) result at
/// (page, word). Reads are made idempotent through kernel buffering, so
/// speculative processes may perform them.
struct SourceReadOp {
  std::uint32_t device = 0;
  std::uint64_t key = 0;
  VPage page = 0;
  std::uint32_t word = 0;
};

/// Unconditional abort (a method that fails its own self-checks).
struct AbortOp {};

using Op = std::variant<ComputeOp, TouchOp, GuardOp, AltBlockOp, BindOp,
                        SendOp, RecvOp, SourceWriteOp, SourceReadOp, AbortOp>;

struct Program {
  std::vector<Op> ops;
  std::string label;  // for traces and test diagnostics
};

/// Fluent builder so workloads read like the pseudo-code in the paper.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string label = "") {
    prog_ = std::make_shared<Program>();
    prog_->label = std::move(label);
  }

  ProgramBuilder& compute(SimTime d) { return add(ComputeOp{d}); }

  ProgramBuilder& read(VPage page, std::uint32_t word = 0) {
    return add(TouchOp{page, word, false, 0});
  }

  ProgramBuilder& write(VPage page, std::uint32_t word, std::uint64_t value) {
    return add(TouchOp{page, word, true, value});
  }

  ProgramBuilder& guard(std::function<bool(const AddressSpace&)> ok) {
    return add(GuardOp{std::move(ok)});
  }

  ProgramBuilder& alt(std::vector<ProgramRef> alternates, SimTime timeout = 0,
                      ProgramRef on_fail = nullptr) {
    return add(AltBlockOp{std::move(alternates), timeout, std::move(on_fail), {}});
  }

  ProgramBuilder& alt_guarded(
      std::vector<ProgramRef> alternates,
      std::vector<std::function<bool(const AddressSpace&)>> pre_guards,
      SimTime timeout = 0, ProgramRef on_fail = nullptr) {
    return add(AltBlockOp{std::move(alternates), timeout, std::move(on_fail),
                          std::move(pre_guards)});
  }

  ProgramBuilder& bind(Port port) { return add(BindOp{port}); }

  ProgramBuilder& send(Port port, Bytes data) {
    return add(SendOp{port, std::move(data)});
  }

  ProgramBuilder& send_u64(Port port, std::uint64_t v) {
    Bytes b;
    ByteWriter w(b);
    w.u64(v);
    return add(SendOp{port, std::move(b)});
  }

  ProgramBuilder& recv(VPage page, std::uint32_t word, SimTime timeout = 0,
                       std::uint64_t timeout_value = 0) {
    return add(RecvOp{page, word, timeout, timeout_value});
  }

  ProgramBuilder& source_write(std::uint32_t device, Bytes data) {
    return add(SourceWriteOp{device, std::move(data)});
  }

  ProgramBuilder& source_read(std::uint32_t device, std::uint64_t key,
                              VPage page, std::uint32_t word) {
    return add(SourceReadOp{device, key, page, word});
  }

  ProgramBuilder& abort() { return add(AbortOp{}); }

  [[nodiscard]] ProgramRef build() { return prog_; }

 private:
  ProgramBuilder& add(Op op) {
    prog_->ops.push_back(std::move(op));
    return *this;
  }

  std::shared_ptr<Program> prog_;
};

}  // namespace altx::sim
