// Simulated processes.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "msg/message.hpp"
#include "msg/predicate.hpp"
#include "sim/page.hpp"
#include "sim/program.hpp"

namespace altx::sim {

enum class ProcState {
  kReady,     // runnable, waiting for a CPU
  kRunning,   // currently holding a CPU
  kBlocked,   // waiting (alt_wait, recv, source gate)
  kDone,      // finished (top-level) or absorbed (winning child)
  kDead,      // aborted or eliminated
};

enum class BlockReason {
  kNone,
  kAltWait,     // parent waiting for a winning child
  kRecv,        // waiting for a message
  kSourceGate,  // wants to touch a source but runs under unresolved predicates
  kCommitGate,  // program finished but predicates still unresolved
};

/// Why a process ceased to exist, for statistics and tests.
enum class ExitKind {
  kStillAlive,
  kCompleted,   // ran to the end of its program (top level) or won its sync
  kAborted,     // guard failed / explicit abort / alt-block failure propagated
  kEliminated,  // killed as a losing sibling or a dead world
  kTooLate,     // attempted to synchronize after a winner was chosen
};

/// Bookkeeping the parent keeps while blocked in alt_wait. A single
/// alternative can be represented by several "worlds" if a speculative
/// message split one of its processes; the alternative is failed only when
/// every world of it has failed, and any world committing commits the
/// alternative.
struct AltContext {
  struct Alternative {
    std::vector<Pid> worlds;  // live pids implementing this alternative
  };
  std::vector<Alternative> alternatives;
  SimTime deadline = 0;  // absolute; 0 = none
  ProgramRef on_fail;
  bool decided = false;  // winner chosen or block failed
};

/// One frame of the program stack (on_fail handlers push frames).
struct ProgFrame {
  ProgramRef prog;
  std::size_t pc = 0;
};

class SimProcess {
 public:
  SimProcess(Pid pid, NodeId node, AddressSpace as, ProgramRef prog)
      : pid_(pid), node_(node), as_(std::move(as)) {
    frames_.push_back(ProgFrame{std::move(prog), 0});
  }

  Pid pid_;
  NodeId node_;
  AddressSpace as_;
  Predicate pred_;

  ProcState state_ = ProcState::kReady;
  BlockReason block_ = BlockReason::kNone;
  ExitKind exit_ = ExitKind::kStillAlive;

  // Program execution.
  std::vector<ProgFrame> frames_;
  SimTime step_remaining_ = -1;  // <0: current op not yet started
  SimTime pending_penalty_ = 0;  // extra cost folded into the next step
  bool syncing_ = false;         // alt child running its synchronization step
  bool in_ready_ = false;        // already enqueued on a ready queue

  // Alternative-block relationships.
  Pid alt_parent_ = kNoPid;      // parent blocked in alt_wait on us (if any)
  std::size_t alt_index_ = 0;    // which alternative of the parent we implement
  std::optional<AltContext> alt_;  // set while we are blocked in alt_wait

  // Asynchronous elimination: logically dead but still scheduled until the
  // kill event arrives. A doomed process can cause no observable effects.
  bool doomed_ = false;

  // IPC.
  std::deque<Message> inbox_;    // delivered, not yet consumed messages
  std::uint64_t send_seq_ = 0;

  // Ports this process is bound to (world splits rebind the clone).
  std::vector<Port> bound_ports_;

  // On-demand remote spawning: pages not yet resident on this node; the
  // first touch of each pays a network transfer (Theimer-style migration).
  std::unordered_set<VPage> remote_pages_;

  // Accounting.
  SimTime cpu_time_ = 0;
  SimTime spawned_at_ = 0;
  SimTime finished_at_ = -1;  // when the process completed or died
  std::uint64_t generation_ = 0;  // bumped on state transitions to invalidate events

  [[nodiscard]] const Op& current_op() const {
    const ProgFrame& f = frames_.back();
    return f.prog->ops[f.pc];
  }

  [[nodiscard]] bool program_finished() const {
    return frames_.size() == 1 && frames_.back().pc >= frames_.back().prog->ops.size();
  }

  /// Advances past the current op, popping completed on_fail frames.
  void advance() {
    ++frames_.back().pc;
    while (frames_.size() > 1 &&
           frames_.back().pc >= frames_.back().prog->ops.size()) {
      frames_.pop_back();
    }
  }

  [[nodiscard]] bool at_end() const {
    return frames_.back().pc >= frames_.back().prog->ops.size();
  }

  [[nodiscard]] bool is_alt_child() const { return alt_parent_ != kNoPid; }
};

}  // namespace altx::sim
