// Copy-on-write paged memory (paper sections 3.1 and 3.3).
//
// All sink state is fixed-size pages under a single-level store. An
// AddressSpace maps virtual page numbers to reference-counted frames in a
// shared FrameStore; cloning an address space shares every frame (page-map
// inheritance), and the first write to a shared frame copies it. Each
// address space tracks its dirty pages — the paper's per-process descriptor
// table, which is exactly the set of pages whose contents are predicated on
// the process completing.
//
// Frames carry real content (a small vector of 64-bit words) so semantic
// tests can verify that a parent absorbs exactly its winning child's updates;
// the *cost* of a page is modelled separately by MachineModel::page_size.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"

namespace altx::sim {

using VPage = std::uint32_t;
using FrameId = std::uint32_t;
constexpr FrameId kNoFrame = static_cast<FrameId>(-1);

/// Backing store of page frames with reference counts. One per Kernel.
class FrameStore {
 public:
  explicit FrameStore(std::size_t words_per_page = 8)
      : words_per_page_(words_per_page) {
    ALTX_REQUIRE(words_per_page >= 1, "FrameStore: need at least one word");
  }

  [[nodiscard]] std::size_t words_per_page() const { return words_per_page_; }

  FrameId allocate() {
    FrameId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      frames_[id].refs = 1;
      std::fill(frames_[id].words.begin(), frames_[id].words.end(), 0);
    } else {
      id = static_cast<FrameId>(frames_.size());
      frames_.push_back(Frame{1, std::vector<std::uint64_t>(words_per_page_, 0)});
    }
    ++live_frames_;
    return id;
  }

  void ref(FrameId id) { ++frame(id).refs; }

  void unref(FrameId id) {
    Frame& f = frame(id);
    ALTX_ASSERT(f.refs > 0, "FrameStore::unref: refcount underflow");
    if (--f.refs == 0) {
      free_.push_back(id);
      --live_frames_;
    }
  }

  [[nodiscard]] int refcount(FrameId id) const { return frame(id).refs; }
  [[nodiscard]] bool shared(FrameId id) const { return frame(id).refs > 1; }

  /// Copies `src` into a fresh frame (the COW fault path). The caller keeps
  /// its reference on src; copy_frame takes none.
  FrameId copy_frame(FrameId src) {
    const FrameId dst = allocate();
    frames_[dst].words = frames_[src].words;
    return dst;
  }

  [[nodiscard]] std::uint64_t read(FrameId id, std::size_t word) const {
    const Frame& f = frame(id);
    ALTX_REQUIRE(word < f.words.size(), "FrameStore::read: word out of range");
    return f.words[word];
  }

  void write(FrameId id, std::size_t word, std::uint64_t value) {
    Frame& f = frame(id);
    ALTX_REQUIRE(word < f.words.size(), "FrameStore::write: word out of range");
    ALTX_ASSERT(f.refs == 1, "FrameStore::write: writing a shared frame");
    f.words[word] = value;
  }

  [[nodiscard]] std::size_t live_frames() const { return live_frames_; }

 private:
  struct Frame {
    int refs = 0;
    std::vector<std::uint64_t> words;
  };

  Frame& frame(FrameId id) {
    ALTX_ASSERT(id < frames_.size(), "FrameStore: bad frame id");
    return frames_[id];
  }
  [[nodiscard]] const Frame& frame(FrameId id) const {
    ALTX_ASSERT(id < frames_.size(), "FrameStore: bad frame id");
    return frames_[id];
  }

  std::size_t words_per_page_;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_;
  std::size_t live_frames_ = 0;
};

/// Statistics a single address space accumulates; the kernel charges the
/// simulated-time costs, this records the counts.
struct PagingStats {
  std::uint64_t cow_copies = 0;   // frames copied on write faults
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// One process's view of memory: vpage -> frame, copy-on-write.
class AddressSpace {
 public:
  AddressSpace(FrameStore& store, std::size_t pages) : store_(&store) {
    map_.reserve(pages);
    for (std::size_t i = 0; i < pages; ++i) map_.push_back(store_->allocate());
  }

  /// Page-map inheritance: share every frame with `parent`.
  static AddressSpace cow_clone(const AddressSpace& parent) {
    AddressSpace as(*parent.store_);
    as.map_ = parent.map_;
    for (FrameId f : as.map_) as.store_->ref(f);
    return as;
  }

  /// Eager full copy: every frame duplicated up front (the recovery-block
  /// variant of section 5.1.2). Writes then never fault.
  static AddressSpace deep_copy(const AddressSpace& parent) {
    AddressSpace as(*parent.store_);
    as.map_.reserve(parent.map_.size());
    for (FrameId f : parent.map_) as.map_.push_back(parent.store_->copy_frame(f));
    return as;
  }

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  AddressSpace(AddressSpace&& other) noexcept
      : store_(other.store_), map_(std::move(other.map_)),
        dirty_(std::move(other.dirty_)), stats_(other.stats_) {
    other.map_.clear();
    other.dirty_.clear();
  }

  AddressSpace& operator=(AddressSpace&& other) noexcept {
    if (this != &other) {
      release();
      store_ = other.store_;
      map_ = std::move(other.map_);
      dirty_ = std::move(other.dirty_);
      stats_ = other.stats_;
      other.map_.clear();
      other.dirty_.clear();
    }
    return *this;
  }

  ~AddressSpace() { release(); }

  [[nodiscard]] std::size_t pages() const { return map_.size(); }
  [[nodiscard]] std::size_t words_per_page() const { return store_->words_per_page(); }

  [[nodiscard]] std::uint64_t read(VPage page, std::size_t word) {
    check_page(page);
    ++stats_.reads;
    return store_->read(map_[page], word);
  }

  [[nodiscard]] std::uint64_t peek(VPage page, std::size_t word) const {
    check_page(page);
    return store_->read(map_[page], word);
  }

  /// Writes a word; returns true when the write faulted (copied a shared
  /// frame) so the kernel can charge MachineModel::page_copy.
  bool write(VPage page, std::size_t word, std::uint64_t value) {
    check_page(page);
    ++stats_.writes;
    bool faulted = false;
    if (store_->shared(map_[page])) {
      const FrameId copy = store_->copy_frame(map_[page]);
      store_->unref(map_[page]);
      map_[page] = copy;
      ++stats_.cow_copies;
      faulted = true;
    }
    store_->write(map_[page], word, value);
    dirty_.insert(page);
    return faulted;
  }

  /// The per-process descriptor table of updated pages (section 3.3:
  /// "updated and newly-written pages are predicated by virtue of their
  /// residence in a per-process descriptor table").
  [[nodiscard]] const std::unordered_set<VPage>& dirty_pages() const { return dirty_; }

  /// Atomically adopt `winner`'s page map (the alt_wait absorption: "the
  /// parent process absorbs the state changes made by its child by atomically
  /// replacing its page pointer with that of the child").
  void absorb(AddressSpace&& winner) {
    ALTX_REQUIRE(winner.store_ == store_, "AddressSpace::absorb: different stores");
    for (FrameId f : map_) store_->unref(f);
    map_ = std::move(winner.map_);
    // Everything the winner dirtied joins the parent's own dirty set (those
    // pages remain predicated on the *parent's* enclosing assumptions).
    dirty_.insert(winner.dirty_.begin(), winner.dirty_.end());
    stats_.cow_copies += winner.stats_.cow_copies;
    winner.map_.clear();
    winner.dirty_.clear();
  }

  [[nodiscard]] const PagingStats& stats() const { return stats_; }

  /// Number of frames not shared with anyone (private to this space).
  [[nodiscard]] std::size_t private_frames() const {
    std::size_t n = 0;
    for (FrameId f : map_) {
      if (!store_->shared(f)) ++n;
    }
    return n;
  }

  [[nodiscard]] FrameId frame_of(VPage page) const {
    check_page(page);
    return map_[page];
  }

 private:
  explicit AddressSpace(FrameStore& store) : store_(&store) {}

  void release() {
    for (FrameId f : map_) store_->unref(f);
    map_.clear();
    dirty_.clear();
  }

  void check_page(VPage page) const {
    ALTX_REQUIRE(page < map_.size(), "AddressSpace: page out of range");
  }

  FrameStore* store_;
  std::vector<FrameId> map_;
  std::unordered_set<VPage> dirty_;
  PagingStats stats_;
};

}  // namespace altx::sim
