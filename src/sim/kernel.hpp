// The kernel simulator.
//
// A deterministic discrete-event simulation of the operating system the
// paper's design runs on: multi-node, multi-CPU round-robin scheduling over
// COW paged address spaces, the alt_spawn/alt_wait primitives with
// fastest-first synchronization and sibling elimination (synchronous or
// asynchronous), predicated IPC with world splitting, source/sink device
// discipline, and the cost model of sections 4.1-4.4.
//
// Determinism: all events are ordered by (time, insertion sequence); the only
// randomness lives in workload generators, which take explicit seeds.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "msg/message.hpp"
#include "msg/predicate.hpp"
#include "sim/machine.hpp"
#include "sim/page.hpp"
#include "sim/process.hpp"
#include "sim/program.hpp"

namespace altx::sim {

/// When losing siblings are physically terminated (paper section 3.2.1).
enum class Elimination {
  kSynchronous,   // losers are gone before the parent resumes
  kAsynchronous,  // the parent resumes at once; losers die a little later
};

/// A structured trace record, emitted through Kernel::Config::trace for
/// debugging, visualisation, and the timeline tests/examples.
struct TraceEvent {
  enum class Kind {
    kSpawn,       // pid created (root or alternative)
    kCommit,      // pid won its synchronization
    kAbort,       // guard failure / explicit abort
    kEliminate,   // killed as a losing/dead world
    kTooLate,     // refused by the commit rule
    kBlockFail,   // an alt block took its FAIL arm
    kTimeout,     // alt_wait timeout fired
    kWorldSplit,  // receiver forked into two worlds
    kDeliver,     // message accepted into an inbox
    kSourceWrite, // observable device write
    kComplete,    // top-level process finished
    kNodeCrash,   // whole-node failure
  };
  SimTime time = 0;
  Kind kind = Kind::kSpawn;
  Pid pid = kNoPid;
  Pid other = kNoPid;  // parent at spawn, clone at split, sender at deliver
};

[[nodiscard]] const char* to_string(TraceEvent::Kind k);

/// How a remote child's state reaches its node (section 4.4).
enum class RemoteSpawn {
  kCheckpoint,  // ship the process in its entirety up front (Smith/Ioannidis)
  kOnDemand,    // ship a stub; pages fault over on first touch (Theimer 1985)
};

/// A source device: operations on it are not idempotent, so speculative
/// processes may not write it, and reads are made idempotent by buffering
/// (paper sections 3.1 and 6).
class SourceDevice {
 public:
  /// What a fresh read of `key` returns; defaults to the key itself.
  std::function<std::uint64_t(std::uint64_t)> read_fn =
      [](std::uint64_t key) { return key; };

  struct WriteRecord {
    SimTime time;
    Pid writer;
    Bytes data;
  };

  [[nodiscard]] const std::vector<WriteRecord>& writes() const { return writes_; }
  [[nodiscard]] std::uint64_t consumed_reads() const { return consumed_reads_; }

 private:
  friend class Kernel;
  std::vector<WriteRecord> writes_;
  std::unordered_map<std::uint64_t, std::uint64_t> read_buffer_;
  std::uint64_t consumed_reads_ = 0;
};

struct KernelStats {
  SimTime finished_at = 0;

  // CPU accounting. overhead ⊂ busy: overhead counts the cycles spent on
  // spawning, synchronization, elimination and context switches.
  SimTime cpu_busy = 0;
  SimTime useful_work = 0;   // cpu time of processes that completed
  SimTime wasted_work = 0;   // cpu time of eliminated / aborted / too-late ones
  SimTime overhead_work = 0;

  std::uint64_t forks = 0;
  std::uint64_t remote_forks = 0;
  std::uint64_t cow_copies = 0;
  std::uint64_t alt_blocks = 0;
  std::uint64_t commits = 0;
  std::uint64_t alt_failures = 0;
  std::uint64_t alt_timeouts = 0;
  std::uint64_t aborts = 0;
  std::uint64_t eliminations = 0;
  std::uint64_t too_lates = 0;
  std::uint64_t world_splits = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_ignored = 0;
  std::uint64_t messages_dead = 0;  // dropped because the sending world died
  std::uint64_t source_writes = 0;
  std::uint64_t source_reads = 0;
  std::uint64_t buffered_source_reads = 0;
  std::uint64_t ctx_switches = 0;
};

class Kernel {
 public:
  struct Config {
    MachineModel machine;
    std::size_t address_space_pages = 80;  // 320 KB at 4 KB pages
    std::size_t words_per_page = 8;        // semantic content per page
    Elimination elimination = Elimination::kAsynchronous;

    /// Copy the whole address space at spawn instead of sharing it COW
    /// (section 5.1.2: recovery blocks may "copy all of the state rather
    /// than copying as necessary, in order that the state not become
    /// inaccessible and so cause a failure"). Spawn then costs a full page
    /// copy per page, but children take no write faults.
    bool eager_copy = false;

    /// State-transfer strategy for children placed on remote nodes.
    RemoteSpawn remote_spawn = RemoteSpawn::kCheckpoint;

    /// Optional trace sink; called synchronously for every TraceEvent.
    std::function<void(const TraceEvent&)> trace;

    /// Optional schedule-exploration hook (see src/check/): called once per
    /// dispatched step with the process and the step's computed cost, and
    /// returns the cost to actually charge (>= 1 enforced by the kernel).
    /// A deterministic perturbation here reorders slice completions — and
    /// therefore commit races — without touching any program's semantics.
    /// Determinism contract: the hook must be a pure function of its inputs
    /// plus state it derives deterministically from them (e.g. a seeded
    /// per-pid counter), never of wall time or global mutable state.
    std::function<SimTime(Pid, SimTime)> perturb_cost;

    // Small fixed op costs (microseconds).
    SimTime mem_ref_cost = 1;
    SimTime guard_cost = 10;
    SimTime send_cost = 50;
    SimTime recv_cost = 50;
    SimTime ipc_local_latency = 100;
    SimTime source_io_cost = 500;
    SimTime bind_cost = 10;
  };

  explicit Kernel(Config cfg);

  /// Spawns a non-speculative top-level process. `node` < machine.nodes.
  Pid spawn_root(ProgramRef prog, NodeId node = 0);

  /// Runs the event loop until quiescence or `until` (simulated time).
  /// Returns the simulated time at which the run stopped.
  SimTime run(SimTime until = std::numeric_limits<SimTime>::max());

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Post-mortem inspection (processes are kept after death).
  [[nodiscard]] const SimProcess* process(Pid pid) const;
  [[nodiscard]] ExitKind exit_kind(Pid pid) const;
  [[nodiscard]] Resolution resolution(Pid pid) const;
  [[nodiscard]] std::vector<Pid> all_pids() const;

  SourceDevice& source(std::uint32_t device) { return sources_[device]; }

  /// True if any process is still blocked (deadlock diagnosis).
  [[nodiscard]] std::vector<Pid> blocked_pids() const;

  /// Schedules a whole-node failure: at `when`, every process on `node`
  /// dies (its worlds resolve as failed, cascading) and the node stops
  /// scheduling work.
  void crash_node_at(NodeId node, SimTime when);

  [[nodiscard]] bool node_crashed(NodeId node) const {
    return nodes_[node].crashed;
  }

 private:
  enum class EventKind {
    kSliceEnd,
    kDeliver,
    kAltTimeout,
    kRecvTimeout,
    kAsyncKill,
    kNodeCrash,
  };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventKind kind = EventKind::kSliceEnd;
    Pid pid = kNoPid;
    std::uint64_t generation = 0;
    NodeId node = 0;
    int cpu = -1;
    SimTime work = 0;  // productive portion of a slice
    Message msg;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Cpu {
    Pid current = kNoPid;
    Pid last = kNoPid;  // for context-switch accounting
  };

  struct Node {
    std::vector<Cpu> cpus;
    std::deque<Pid> ready;
    bool crashed = false;
  };

  // --- event machinery ---
  void push_event(Event ev);
  void dispatch(const Event& ev);
  void on_slice_end(const Event& ev);
  void on_deliver(const Event& ev);
  void on_alt_timeout(const Event& ev);
  void on_recv_timeout(const Event& ev);
  void on_async_kill(const Event& ev);
  void on_node_crash(const Event& ev);

  // --- scheduling ---
  void make_ready(SimProcess& p);
  void kick(NodeId node);
  void start_slice(NodeId node, int cpu);
  void release_cpu(SimProcess& p);

  // --- op execution ---
  SimTime op_cost(SimProcess& p);
  /// Applies the side effects of the completed step; leaves the process in
  /// its next state (ready / blocked / dead / done).
  void apply_effect(SimProcess& p);
  void step_completed(SimProcess& p);
  void do_alt_block(SimProcess& parent, const AltBlockOp& op);
  void do_send(SimProcess& p, const SendOp& op);
  void do_recv(SimProcess& p, const RecvOp& op);
  void do_source_write(SimProcess& p, const SourceWriteOp& op);
  void do_source_read(SimProcess& p, const SourceReadOp& op);
  void finish_program(SimProcess& p);

  // --- alternative machinery ---
  void attempt_sync(SimProcess& child);
  void fail_alt_block(SimProcess& parent);
  void wake_parent(SimProcess& parent);
  void remove_world(SimProcess& parent, std::size_t alt_index, Pid world);

  // --- predicates, resolution, elimination ---
  void publish_resolution(Pid pid, Resolution outcome);
  void drain_resolutions();
  void eliminate_world(SimProcess& p);
  void finalize_kill(SimProcess& p, ExitKind kind);
  void complete_process(SimProcess& p);
  /// Strips resolved pids from a message's implied assumptions; returns false
  /// if the message comes from a dead world and must be discarded.
  bool canonicalize(Message& m);
  void recheck_gated(SimProcess& p);

  // --- IPC ---
  void deliver_now(SimProcess& dst, Message m);
  SimProcess& split_world(SimProcess& accepting, const Message& m);
  void bind_port(SimProcess& p, Port port);
  void unbind_all(SimProcess& p);

  SimProcess& proc(Pid pid);
  Pid fresh_pid() { return next_pid_++; }
  void emit(TraceEvent::Kind kind, Pid pid, Pid other = kNoPid) {
    if (cfg_.trace) cfg_.trace(TraceEvent{now_, kind, pid, other});
  }
  void account_finished(SimProcess& p);
  [[nodiscard]] bool is_live(const SimProcess& p) const {
    return p.state_ == ProcState::kReady || p.state_ == ProcState::kRunning ||
           p.state_ == ProcState::kBlocked;
  }

  Config cfg_;
  FrameStore frames_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  Pid next_pid_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::vector<Node> nodes_;
  std::map<Pid, std::unique_ptr<SimProcess>> procs_;  // ordered for determinism
  std::unordered_map<Pid, Resolution> resolutions_;
  std::vector<std::pair<Pid, Resolution>> resolution_queue_;
  bool draining_ = false;
  std::map<Port, std::vector<Pid>> port_bindings_;
  std::map<Port, std::vector<Message>> port_backlog_;
  std::map<std::uint32_t, SourceDevice> sources_;
  KernelStats stats_;
};

}  // namespace altx::sim
