#include "sim/kernel.hpp"

#include <algorithm>

namespace altx::sim {

const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kSpawn: return "spawn";
    case TraceEvent::Kind::kCommit: return "commit";
    case TraceEvent::Kind::kAbort: return "abort";
    case TraceEvent::Kind::kEliminate: return "eliminate";
    case TraceEvent::Kind::kTooLate: return "too-late";
    case TraceEvent::Kind::kBlockFail: return "block-fail";
    case TraceEvent::Kind::kTimeout: return "timeout";
    case TraceEvent::Kind::kWorldSplit: return "world-split";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kSourceWrite: return "source-write";
    case TraceEvent::Kind::kComplete: return "complete";
    case TraceEvent::Kind::kNodeCrash: return "node-crash";
  }
  return "?";
}

namespace {

/// First 8 bytes of a payload as a value, zero if shorter.
std::uint64_t payload_value(const Bytes& data) {
  if (data.size() < 8) return 0;
  ByteReader r(data.data(), 8);
  return r.u64();
}

}  // namespace

Kernel::Kernel(Config cfg) : cfg_(std::move(cfg)), frames_(cfg_.words_per_page) {
  cfg_.machine.validate();
  ALTX_REQUIRE(cfg_.address_space_pages >= 1, "Kernel: need at least one page");
  nodes_.resize(static_cast<std::size_t>(cfg_.machine.nodes));
  for (auto& n : nodes_) n.cpus.resize(static_cast<std::size_t>(cfg_.machine.cpus_per_node));
}

Pid Kernel::spawn_root(ProgramRef prog, NodeId node) {
  ALTX_REQUIRE(prog != nullptr, "spawn_root: null program");
  ALTX_REQUIRE(node < nodes_.size(), "spawn_root: node out of range");
  const Pid pid = fresh_pid();
  AddressSpace as(frames_, cfg_.address_space_pages);
  auto p = std::make_unique<SimProcess>(pid, node, std::move(as), std::move(prog));
  p->spawned_at_ = now_;
  SimProcess& ref = *p;
  procs_.emplace(pid, std::move(p));
  emit(TraceEvent::Kind::kSpawn, pid);
  make_ready(ref);
  return pid;
}

SimTime Kernel::run(SimTime until) {
  while (!events_.empty()) {
    if (events_.top().time > until) {
      now_ = until;
      break;
    }
    Event ev = events_.top();
    events_.pop();
    ALTX_ASSERT(ev.time >= now_, "event time went backwards");
    now_ = ev.time;
    dispatch(ev);
  }
  stats_.finished_at = now_;
  return now_;
}

const SimProcess* Kernel::process(Pid pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

ExitKind Kernel::exit_kind(Pid pid) const {
  const SimProcess* p = process(pid);
  return p ? p->exit_ : ExitKind::kStillAlive;
}

Resolution Kernel::resolution(Pid pid) const {
  auto it = resolutions_.find(pid);
  return it == resolutions_.end() ? Resolution::kPending : it->second;
}

std::vector<Pid> Kernel::all_pids() const {
  std::vector<Pid> out;
  out.reserve(procs_.size());
  for (const auto& [pid, p] : procs_) out.push_back(pid);
  return out;
}

std::vector<Pid> Kernel::blocked_pids() const {
  std::vector<Pid> out;
  for (const auto& [pid, p] : procs_) {
    if (p->state_ == ProcState::kBlocked) out.push_back(pid);
  }
  return out;
}

// --------------------------------------------------------------------------
// Event machinery
// --------------------------------------------------------------------------

void Kernel::push_event(Event ev) {
  ev.seq = next_seq_++;
  events_.push(std::move(ev));
}

void Kernel::dispatch(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kSliceEnd: on_slice_end(ev); break;
    case EventKind::kDeliver: on_deliver(ev); break;
    case EventKind::kAltTimeout: on_alt_timeout(ev); break;
    case EventKind::kRecvTimeout: on_recv_timeout(ev); break;
    case EventKind::kAsyncKill: on_async_kill(ev); break;
    case EventKind::kNodeCrash: on_node_crash(ev); break;
  }
}

void Kernel::on_slice_end(const Event& ev) {
  Cpu& cpu = nodes_[ev.node].cpus[static_cast<std::size_t>(ev.cpu)];
  SimProcess& p = proc(ev.pid);
  if (cpu.current != ev.pid || p.state_ != ProcState::kRunning) return;  // stale
  cpu.current = kNoPid;
  cpu.last = ev.pid;
  p.cpu_time_ += ev.work;
  stats_.cpu_busy += ev.work;
  p.step_remaining_ -= ev.work;
  if (p.step_remaining_ > 0) {
    make_ready(p);  // preempted mid-step; rejoin the back of the queue
  } else {
    step_completed(p);
  }
  kick(ev.node);
}

void Kernel::on_deliver(const Event& ev) {
  const Port port = ev.msg.destination;
  auto it = port_bindings_.find(port);
  if (it == port_bindings_.end() || it->second.empty()) {
    port_backlog_[port].push_back(ev.msg);
    return;
  }
  // Fan out to every world currently bound; worlds created after this instant
  // inherited the inbox of the world they split from.
  const std::vector<Pid> binders = it->second;
  for (Pid dst : binders) {
    auto pit = procs_.find(dst);
    if (pit == procs_.end() || !is_live(*pit->second)) continue;
    deliver_now(*pit->second, ev.msg);
  }
}

void Kernel::on_alt_timeout(const Event& ev) {
  SimProcess& p = proc(ev.pid);
  if (!is_live(p) || p.block_ != BlockReason::kAltWait || !p.alt_ ||
      ev.generation != p.generation_ || p.alt_->decided) {
    return;  // stale: the block was decided before the deadline
  }
  stats_.alt_timeouts++;
  emit(TraceEvent::Kind::kTimeout, p.pid_);
  p.alt_->decided = true;
  // Give up on every still-running alternative: resolve them failed; the
  // cascade eliminates them (per the configured elimination policy).
  std::vector<Pid> worlds;
  for (const auto& alt : p.alt_->alternatives) {
    worlds.insert(worlds.end(), alt.worlds.begin(), alt.worlds.end());
  }
  for (Pid w : worlds) publish_resolution(w, Resolution::kFailed);
  fail_alt_block(p);
}

void Kernel::on_recv_timeout(const Event& ev) {
  SimProcess& p = proc(ev.pid);
  if (!is_live(p) || p.block_ != BlockReason::kRecv ||
      ev.generation != p.generation_) {
    return;
  }
  ALTX_ASSERT(std::holds_alternative<RecvOp>(p.current_op()),
              "recv timeout on a non-recv op");
  const auto& op = std::get<RecvOp>(p.current_op());
  if (p.as_.write(op.page, op.word, op.timeout_value)) stats_.cow_copies++;
  p.advance();
  p.step_remaining_ = -1;
  make_ready(p);
}

void Kernel::on_async_kill(const Event& ev) {
  auto it = procs_.find(ev.pid);
  if (it == procs_.end()) return;
  SimProcess& p = *it->second;
  if (is_live(p) && p.doomed_) finalize_kill(p, ExitKind::kEliminated);
}

// --------------------------------------------------------------------------
// Scheduling
// --------------------------------------------------------------------------

void Kernel::make_ready(SimProcess& p) {
  ALTX_ASSERT(is_live(p), "make_ready on a finished process");
  p.state_ = ProcState::kReady;
  p.block_ = BlockReason::kNone;
  ++p.generation_;
  if (!p.in_ready_) {
    nodes_[p.node_].ready.push_back(p.pid_);
    p.in_ready_ = true;
  }
  kick(p.node_);
}

void Kernel::kick(NodeId node) {
  Node& n = nodes_[node];
  if (n.crashed) return;
  for (std::size_t c = 0; c < n.cpus.size(); ++c) {
    if (n.cpus[c].current == kNoPid) {
      if (n.ready.empty()) return;
      start_slice(node, static_cast<int>(c));
    }
  }
}

void Kernel::start_slice(NodeId node, int cpu) {
  Node& n = nodes_[node];
  Cpu& c = n.cpus[static_cast<std::size_t>(cpu)];
  ALTX_ASSERT(c.current == kNoPid, "start_slice on a busy cpu");
  while (!n.ready.empty()) {
    const Pid pid = n.ready.front();
    n.ready.pop_front();
    SimProcess& p = proc(pid);
    p.in_ready_ = false;
    if (p.state_ != ProcState::kReady) continue;  // died while queued
    p.state_ = ProcState::kRunning;
    c.current = pid;
    if (p.step_remaining_ < 0) p.step_remaining_ = op_cost(p);
    const SimTime work = std::min(cfg_.machine.quantum, p.step_remaining_);
    SimTime extra = 0;
    if (c.last != pid) {
      extra = cfg_.machine.ctx_switch;
      stats_.ctx_switches++;
      stats_.overhead_work += extra;
    }
    Event ev;
    ev.time = now_ + extra + work;
    ev.kind = EventKind::kSliceEnd;
    ev.pid = pid;
    ev.node = node;
    ev.cpu = cpu;
    ev.work = work;
    push_event(std::move(ev));
    return;
  }
}

void Kernel::release_cpu(SimProcess& p) {
  Node& n = nodes_[p.node_];
  for (auto& c : n.cpus) {
    if (c.current == p.pid_) {
      c.current = kNoPid;
      c.last = p.pid_;
      kick(p.node_);
      return;
    }
  }
}

// --------------------------------------------------------------------------
// Op execution
// --------------------------------------------------------------------------

SimTime Kernel::op_cost(SimProcess& p) {
  SimTime penalty = 0;
  if (p.pending_penalty_ > 0) {
    penalty = p.pending_penalty_;
    stats_.overhead_work += penalty;
    p.pending_penalty_ = 0;
  }
  if (p.syncing_) {
    stats_.overhead_work += cfg_.machine.commit_cost;
    return penalty + cfg_.machine.commit_cost;
  }
  if (p.at_end()) {
    if (p.is_alt_child()) {
      // Reaching the end of an alternate's program is the alt_wait(0) call:
      // run the synchronization step next.
      p.syncing_ = true;
      stats_.overhead_work += cfg_.machine.commit_cost;
      return penalty + cfg_.machine.commit_cost;
    }
    return penalty + 1;
  }
  const MachineModel& m = cfg_.machine;
  const Op& op = p.current_op();
  SimTime cost = 1;
  if (const auto* c = std::get_if<ComputeOp>(&op)) {
    cost = std::max<SimTime>(1, c->duration);
  } else if (const auto* t = std::get_if<TouchOp>(&op)) {
    cost = cfg_.mem_ref_cost;
    if (p.remote_pages_.contains(t->page)) cost += m.transfer_cost(m.page_size);
    if (t->write && frames_.shared(p.as_.frame_of(t->page))) cost += m.page_copy;
  } else if (std::get_if<GuardOp>(&op)) {
    cost = cfg_.guard_cost;
  } else if (const auto* a = std::get_if<AltBlockOp>(&op)) {
    cost = static_cast<SimTime>(a->pre_guards.size()) * cfg_.guard_cost;
    for (std::size_t i = 0; i < a->alternates.size(); ++i) {
      // A false pre-guard saves the whole fork (evaluated again, identically,
      // when the op's effects are applied).
      if (i < a->pre_guards.size() && a->pre_guards[i] &&
          !a->pre_guards[i](p.as_)) {
        continue;
      }
      const NodeId child_node =
          static_cast<NodeId>((p.node_ + i) % nodes_.size());
      if (child_node != p.node_) {
        if (cfg_.remote_spawn == RemoteSpawn::kOnDemand) {
          cost += m.rfork_base + m.transfer_cost(m.page_size);  // stub only
        } else {
          cost += m.rfork_cost(p.as_.pages() * m.page_size);
        }
      } else if (cfg_.eager_copy) {
        cost += m.fork_base +
                m.page_copy * static_cast<SimTime>(p.as_.pages());
      } else {
        cost += m.fork_cost(p.as_.pages());
      }
    }
    cost = std::max<SimTime>(1, cost);
    stats_.overhead_work += cost;
  } else if (std::get_if<BindOp>(&op)) {
    cost = cfg_.bind_cost;
  } else if (std::get_if<SendOp>(&op)) {
    cost = cfg_.send_cost;
  } else if (std::get_if<RecvOp>(&op)) {
    cost = cfg_.recv_cost;
  } else if (std::get_if<SourceWriteOp>(&op) || std::get_if<SourceReadOp>(&op)) {
    cost = cfg_.source_io_cost;
  }
  if (cfg_.perturb_cost) {
    cost = std::max<SimTime>(1, cfg_.perturb_cost(p.pid_, cost));
  }
  return penalty + cost;
}

void Kernel::step_completed(SimProcess& p) {
  p.step_remaining_ = -1;
  if (p.syncing_) {
    attempt_sync(p);
    return;
  }
  apply_effect(p);
}

void Kernel::apply_effect(SimProcess& p) {
  if (p.at_end()) {
    finish_program(p);
    return;
  }
  const Op& op = p.current_op();
  if (const auto* c = std::get_if<ComputeOp>(&op)) {
    (void)c;
    p.advance();
    make_ready(p);
  } else if (const auto* t = std::get_if<TouchOp>(&op)) {
    p.remote_pages_.erase(t->page);
    if (t->write) {
      if (p.as_.write(t->page, t->word, t->value)) stats_.cow_copies++;
    } else {
      (void)p.as_.read(t->page, t->word);
    }
    p.advance();
    make_ready(p);
  } else if (const auto* g = std::get_if<GuardOp>(&op)) {
    const bool ok = !g->ok || g->ok(p.as_);
    if (ok) {
      p.advance();
      make_ready(p);
    } else {
      // The guard was not satisfied: abort without synchronizing.
      Pid parent = p.alt_parent_;
      const std::size_t idx = p.alt_index_;
      finalize_kill(p, ExitKind::kAborted);
      publish_resolution(p.pid_, Resolution::kFailed);
      if (parent != kNoPid) remove_world(proc(parent), idx, p.pid_);
    }
  } else if (const auto* a = std::get_if<AltBlockOp>(&op)) {
    do_alt_block(p, *a);
  } else if (const auto* b = std::get_if<BindOp>(&op)) {
    bind_port(p, b->port);
    p.advance();
    make_ready(p);
  } else if (const auto* s = std::get_if<SendOp>(&op)) {
    do_send(p, *s);
    p.advance();
    make_ready(p);
  } else if (const auto* r = std::get_if<RecvOp>(&op)) {
    do_recv(p, *r);
  } else if (const auto* sw = std::get_if<SourceWriteOp>(&op)) {
    do_source_write(p, *sw);
  } else if (const auto* sr = std::get_if<SourceReadOp>(&op)) {
    do_source_read(p, *sr);
  } else if (std::get_if<AbortOp>(&op)) {
    Pid parent = p.alt_parent_;
    const std::size_t idx = p.alt_index_;
    finalize_kill(p, ExitKind::kAborted);
    publish_resolution(p.pid_, Resolution::kFailed);
    if (parent != kNoPid) remove_world(proc(parent), idx, p.pid_);
  } else {
    ALTX_ASSERT(false, "unhandled op");
  }
}

void Kernel::do_alt_block(SimProcess& parent, const AltBlockOp& op) {
  stats_.alt_blocks++;
  if (op.alternates.empty()) {
    stats_.alt_failures++;
    parent.advance();
    if (op.on_fail) {
      parent.frames_.push_back(ProgFrame{op.on_fail, 0});
      make_ready(parent);
    } else {
      const Pid gp = parent.alt_parent_;
      const std::size_t idx = parent.alt_index_;
      finalize_kill(parent, ExitKind::kAborted);
      publish_resolution(parent.pid_, Resolution::kFailed);
      if (gp != kNoPid) remove_world(proc(gp), idx, parent.pid_);
    }
    return;
  }

  // Pre-spawn guards: an alternative whose guard is already false in the
  // parent is never forked at all.
  std::vector<bool> spawnable(op.alternates.size(), true);
  std::size_t viable = 0;
  for (std::size_t i = 0; i < op.alternates.size(); ++i) {
    if (i < op.pre_guards.size() && op.pre_guards[i] &&
        !op.pre_guards[i](parent.as_)) {
      spawnable[i] = false;
    } else {
      ++viable;
    }
  }
  if (viable == 0) {
    stats_.alt_failures++;
    emit(TraceEvent::Kind::kBlockFail, parent.pid_);
    parent.advance();
    if (op.on_fail) {
      parent.frames_.push_back(ProgFrame{op.on_fail, 0});
      make_ready(parent);
    } else {
      const Pid gp = parent.alt_parent_;
      const std::size_t idx = parent.alt_index_;
      finalize_kill(parent, ExitKind::kAborted);
      publish_resolution(parent.pid_, Resolution::kFailed);
      if (gp != kNoPid) remove_world(proc(gp), idx, parent.pid_);
    }
    return;
  }

  // Allocate all sibling pids up front so each child's predicate can name
  // every sibling.
  std::vector<Pid> kids;
  kids.reserve(op.alternates.size());
  for (std::size_t i = 0; i < op.alternates.size(); ++i) {
    kids.push_back(spawnable[i] ? fresh_pid() : kNoPid);
  }

  AltContext ctx;
  ctx.alternatives.resize(op.alternates.size());
  ctx.on_fail = op.on_fail;
  ctx.deadline = op.timeout > 0 ? now_ + op.timeout : 0;

  std::vector<Pid> siblings;
  for (Pid kid : kids) {
    if (kid != kNoPid) siblings.push_back(kid);
  }
  for (std::size_t i = 0; i < op.alternates.size(); ++i) {
    if (!spawnable[i]) continue;
    const NodeId child_node =
        static_cast<NodeId>((parent.node_ + i) % nodes_.size());
    auto child = std::make_unique<SimProcess>(
        kids[i], child_node,
        cfg_.eager_copy ? AddressSpace::deep_copy(parent.as_)
                        : AddressSpace::cow_clone(parent.as_),
        op.alternates[i]);
    child->pred_ = Predicate::for_child(parent.pred_, kids[i], siblings);
    child->alt_parent_ = parent.pid_;
    child->alt_index_ = i;
    child->spawned_at_ = now_;
    stats_.forks++;
    if (child_node != parent.node_) {
      stats_.remote_forks++;
      if (cfg_.remote_spawn == RemoteSpawn::kOnDemand) {
        for (VPage pg = 0; pg < child->as_.pages(); ++pg) {
          child->remote_pages_.insert(pg);
        }
      }
    }
    ctx.alternatives[i].worlds.push_back(kids[i]);
    SimProcess& ref = *child;
    const bool dead_node = nodes_[child_node].crashed;
    procs_.emplace(kids[i], std::move(child));
    emit(TraceEvent::Kind::kSpawn, kids[i], parent.pid_);
    if (dead_node) {
      // rfork to a crashed node fails: the alternative aborts immediately.
      // Deferred below so the context is fully built first.
    } else {
      make_ready(ref);
    }
  }

  parent.alt_ = std::move(ctx);
  parent.state_ = ProcState::kBlocked;
  parent.block_ = BlockReason::kAltWait;
  ++parent.generation_;
  for (Pid kid : kids) {
    if (kid == kNoPid) continue;
    SimProcess& child = proc(kid);
    if (nodes_[child.node_].crashed && is_live(child)) {
      finalize_kill(child, ExitKind::kAborted);
      publish_resolution(kid, Resolution::kFailed);
      remove_world(parent, child.alt_index_, kid);
      if (!parent.alt_.has_value()) break;  // block already failed
    }
  }
  if (op.timeout > 0) {
    Event ev;
    ev.time = now_ + op.timeout;
    ev.kind = EventKind::kAltTimeout;
    ev.pid = parent.pid_;
    ev.generation = parent.generation_;
    push_event(std::move(ev));
  }
}

void Kernel::do_send(SimProcess& p, const SendOp& op) {
  stats_.messages_sent++;
  if (p.doomed_) return;  // a dead world causes no observable effects
  Message m;
  m.sending_predicate = p.pred_;
  m.data = op.data;
  m.sender = p.pid_;
  m.destination = op.port;
  m.seq = p.send_seq_++;
  m.sender_speculative = !p.pred_.satisfied() || p.is_alt_child();
  // Transit latency is charged on the wire, not to the sender's CPU. All
  // receivers see the same latency, so per-pair FIFO is preserved.
  const SimTime latency = cfg_.ipc_local_latency;
  Event ev;
  ev.time = now_ + latency;
  ev.kind = EventKind::kDeliver;
  ev.msg = std::move(m);
  push_event(std::move(ev));
}

void Kernel::deliver_now(SimProcess& dst, Message m) {
  if (dst.doomed_) return;
  if (!canonicalize(m)) {
    stats_.messages_dead++;
    return;
  }
  emit(TraceEvent::Kind::kDeliver, dst.pid_, m.sender);
  dst.inbox_.push_back(std::move(m));
  stats_.messages_delivered++;
  if (dst.state_ == ProcState::kBlocked && dst.block_ == BlockReason::kRecv) {
    dst.step_remaining_ = -1;  // re-execute the recv op against the new inbox
    make_ready(dst);
  }
}

void Kernel::do_recv(SimProcess& p, const RecvOp& op) {
  while (!p.inbox_.empty()) {
    Message m = std::move(p.inbox_.front());
    p.inbox_.pop_front();
    if (!canonicalize(m)) {
      stats_.messages_dead++;
      continue;
    }
    if (p.doomed_) {
      // Doomed worlds consume messages without observable effect and without
      // splitting; their memory dies with them.
      (void)p.as_.write(op.page, op.word, payload_value(m.data));
      p.advance();
      make_ready(p);
      return;
    }
    switch (classify_reception(p.pred_, m)) {
      case Reception::kAccept: {
        if (p.as_.write(op.page, op.word, payload_value(m.data))) stats_.cow_copies++;
        p.advance();
        make_ready(p);
        return;
      }
      case Reception::kIgnore:
        stats_.messages_ignored++;
        continue;
      case Reception::kSplit: {
        // Fork the receiver: this process becomes the world that accepts the
        // message; the clone is the world that rejects it.
        SimProcess& reject = split_world(p, m);
        emit(TraceEvent::Kind::kWorldSplit, p.pid_, reject.pid_);
        p.pred_ = accepting_world(p.pred_, m);
        p.pending_penalty_ += cfg_.machine.fork_cost(p.as_.pages());
        stats_.world_splits++;
        stats_.forks++;
        // Reprocess the message under the new predicate; it now classifies
        // as an accept.
        p.inbox_.push_front(std::move(m));
        make_ready(p);
        return;
      }
    }
  }
  // Nothing consumable: block until a delivery (or the timeout).
  p.state_ = ProcState::kBlocked;
  p.block_ = BlockReason::kRecv;
  ++p.generation_;
  if (op.timeout > 0) {
    Event ev;
    ev.time = now_ + op.timeout;
    ev.kind = EventKind::kRecvTimeout;
    ev.pid = p.pid_;
    ev.generation = p.generation_;
    push_event(std::move(ev));
  }
}

SimProcess& Kernel::split_world(SimProcess& accepting, const Message& m) {
  const Pid wpid = fresh_pid();
  auto w = std::make_unique<SimProcess>(wpid, accepting.node_,
                                        AddressSpace::cow_clone(accepting.as_),
                                        accepting.frames_.front().prog);
  w->frames_ = accepting.frames_;  // same program position (at the RecvOp)
  w->pred_ = rejecting_world(accepting.pred_, m);
  w->alt_parent_ = accepting.alt_parent_;
  w->alt_index_ = accepting.alt_index_;
  w->inbox_ = accepting.inbox_;  // the split message itself is not included
  w->send_seq_ = accepting.send_seq_;
  w->spawned_at_ = now_;
  w->step_remaining_ = -1;
  SimProcess& ref = *w;
  procs_.emplace(wpid, std::move(w));
  for (Port port : accepting.bound_ports_) bind_port(ref, port);
  if (ref.is_alt_child()) {
    SimProcess& parent = proc(ref.alt_parent_);
    ALTX_ASSERT(parent.alt_.has_value(), "split of an alt child without context");
    parent.alt_->alternatives[ref.alt_index_].worlds.push_back(wpid);
  }
  make_ready(ref);
  return ref;
}

void Kernel::do_source_write(SimProcess& p, const SourceWriteOp& op) {
  if (p.doomed_) {
    p.advance();
    make_ready(p);
    return;
  }
  if (!p.pred_.satisfied()) {
    // Restricted from causing observable side effects while speculative:
    // gate until the predicates resolve (or the world dies).
    p.state_ = ProcState::kBlocked;
    p.block_ = BlockReason::kSourceGate;
    ++p.generation_;
    return;
  }
  SourceDevice& dev = sources_[op.device];
  dev.writes_.push_back(SourceDevice::WriteRecord{now_, p.pid_, op.data});
  stats_.source_writes++;
  emit(TraceEvent::Kind::kSourceWrite, p.pid_);
  p.advance();
  make_ready(p);
}

void Kernel::do_source_read(SimProcess& p, const SourceReadOp& op) {
  SourceDevice& dev = sources_[op.device];
  std::uint64_t value = 0;
  auto it = dev.read_buffer_.find(op.key);
  if (it != dev.read_buffer_.end()) {
    value = it->second;
    stats_.buffered_source_reads++;
  } else {
    // First consumption: read the device once and buffer the result so the
    // read is idempotent for every (speculative) sibling.
    value = dev.read_fn(op.key);
    dev.read_buffer_.emplace(op.key, value);
    dev.consumed_reads_++;
    stats_.source_reads++;
  }
  if (p.as_.write(op.page, op.word, value)) stats_.cow_copies++;
  p.advance();
  make_ready(p);
}

void Kernel::finish_program(SimProcess& p) {
  ALTX_ASSERT(!p.is_alt_child(), "alt children synchronize, not finish");
  if (p.doomed_) {
    finalize_kill(p, ExitKind::kEliminated);
    return;
  }
  if (!p.pred_.satisfied()) {
    // Ran to the end but still speculative (e.g. accepted a message from an
    // undecided alternative): hold the commit until the world resolves.
    p.state_ = ProcState::kBlocked;
    p.block_ = BlockReason::kCommitGate;
    ++p.generation_;
    return;
  }
  complete_process(p);
}

void Kernel::complete_process(SimProcess& p) {
  p.state_ = ProcState::kDone;
  p.exit_ = ExitKind::kCompleted;
  p.finished_at_ = now_;
  emit(TraceEvent::Kind::kComplete, p.pid_);
  ++p.generation_;
  unbind_all(p);
  account_finished(p);
  publish_resolution(p.pid_, Resolution::kCompleted);
}

// --------------------------------------------------------------------------
// Alternative synchronization
// --------------------------------------------------------------------------

void Kernel::attempt_sync(SimProcess& child) {
  child.syncing_ = false;
  auto pit = procs_.find(child.alt_parent_);
  SimProcess* parent = pit == procs_.end() ? nullptr : pit->second.get();
  const bool open = parent != nullptr && is_live(*parent) &&
                    parent->alt_.has_value() && !parent->alt_->decided &&
                    !child.doomed_;
  if (!open) {
    // "Too late" for the synchronization: terminate self (section 3.2.1).
    finalize_kill(child, ExitKind::kTooLate);
    publish_resolution(child.pid_, Resolution::kFailed);
    if (parent != nullptr && parent->alt_.has_value()) {
      remove_world(*parent, child.alt_index_, child.pid_);
    }
    return;
  }

  // Fastest first: this child wins. The parent absorbs its state changes by
  // atomically replacing its page pointer with the child's.
  parent->alt_->decided = true;
  stats_.commits++;
  emit(TraceEvent::Kind::kCommit, child.pid_, parent->pid_);
  std::size_t losers = 0;
  for (const auto& alt : parent->alt_->alternatives) {
    for (Pid w : alt.worlds) {
      if (w != child.pid_) ++losers;
    }
  }
  parent->as_.absorb(std::move(child.as_));
  child.state_ = ProcState::kDone;
  child.exit_ = ExitKind::kCompleted;
  child.finished_at_ = now_;
  ++child.generation_;
  unbind_all(child);
  account_finished(child);

  if (cfg_.elimination == Elimination::kSynchronous && losers > 0) {
    // The parent issues the terminations before resuming.
    parent->pending_penalty_ += cfg_.machine.kill_cost * static_cast<SimTime>(losers);
  }

  // Resolving the winner as completed makes every sibling world's "winner
  // fails" assumption false, so the cascade performs sibling elimination.
  publish_resolution(child.pid_, Resolution::kCompleted);

  parent->alt_.reset();
  parent->advance();
  make_ready(*parent);
}

void Kernel::remove_world(SimProcess& parent, std::size_t alt_index, Pid world) {
  if (!parent.alt_.has_value()) return;
  if (alt_index >= parent.alt_->alternatives.size()) return;
  auto& worlds = parent.alt_->alternatives[alt_index].worlds;
  auto it = std::find(worlds.begin(), worlds.end(), world);
  if (it == worlds.end()) return;  // stale: a child of an earlier, decided block
  worlds.erase(it);
  if (parent.alt_->decided) return;
  for (const auto& alt : parent.alt_->alternatives) {
    if (!alt.worlds.empty()) return;
  }
  // Every world of every alternative has failed: the block fails.
  parent.alt_->decided = true;
  fail_alt_block(parent);
}

void Kernel::fail_alt_block(SimProcess& parent) {
  stats_.alt_failures++;
  emit(TraceEvent::Kind::kBlockFail, parent.pid_);
  const ProgramRef on_fail = parent.alt_ ? parent.alt_->on_fail : nullptr;
  parent.alt_.reset();
  parent.advance();
  if (on_fail) {
    parent.frames_.push_back(ProgFrame{on_fail, 0});
    parent.step_remaining_ = -1;
    make_ready(parent);
    return;
  }
  // No FAIL arm: the failure propagates — the parent itself aborts.
  const Pid gp = parent.alt_parent_;
  const std::size_t idx = parent.alt_index_;
  finalize_kill(parent, ExitKind::kAborted);
  publish_resolution(parent.pid_, Resolution::kFailed);
  if (gp != kNoPid) remove_world(proc(gp), idx, parent.pid_);
}

// --------------------------------------------------------------------------
// Resolution and elimination
// --------------------------------------------------------------------------

void Kernel::publish_resolution(Pid pid, Resolution outcome) {
  if (resolutions_.contains(pid)) return;  // first resolution wins
  resolutions_.emplace(pid, outcome);
  resolution_queue_.emplace_back(pid, outcome);
  if (!draining_) drain_resolutions();
}

void Kernel::drain_resolutions() {
  draining_ = true;
  while (!resolution_queue_.empty()) {
    const auto [pid, outcome] = resolution_queue_.front();
    resolution_queue_.erase(resolution_queue_.begin());
    // A process resolved as failed while still alive (e.g. by an alt_wait
    // timeout) is itself a dead world.
    if (outcome == Resolution::kFailed) {
      auto it = procs_.find(pid);
      if (it != procs_.end() && is_live(*it->second) && !it->second->doomed_) {
        eliminate_world(*it->second);
      }
    }
    // Snapshot the pid set: eliminations mutate procs_' values (never the
    // map itself), but new worlds can be created only by running processes,
    // not by resolution, so the snapshot is complete.
    std::vector<SimProcess*> live;
    for (auto& [qpid, q] : procs_) {
      if (is_live(*q) && !q->doomed_ && qpid != pid) live.push_back(q.get());
    }
    for (SimProcess* q : live) {
      if (!is_live(*q) || q->doomed_) continue;  // eliminated earlier this drain
      const Resolution verdict = q->pred_.resolve(pid, outcome);
      if (verdict == Resolution::kFailed) {
        eliminate_world(*q);
      } else {
        recheck_gated(*q);
      }
    }
  }
  draining_ = false;
}

void Kernel::recheck_gated(SimProcess& p) {
  if (p.state_ != ProcState::kBlocked || !p.pred_.satisfied()) return;
  if (p.block_ == BlockReason::kSourceGate) {
    p.step_remaining_ = -1;
    make_ready(p);
  } else if (p.block_ == BlockReason::kCommitGate) {
    complete_process(p);
  }
}

void Kernel::eliminate_world(SimProcess& q) {
  if (!is_live(q) || q.doomed_) return;
  publish_resolution(q.pid_, Resolution::kFailed);
  // A dying world takes its own speculative children with it.
  if (q.alt_.has_value()) {
    std::vector<Pid> worlds;
    for (const auto& alt : q.alt_->alternatives) {
      worlds.insert(worlds.end(), alt.worlds.begin(), alt.worlds.end());
    }
    q.alt_->decided = true;  // nobody can commit into a dead parent
    for (Pid w : worlds) publish_resolution(w, Resolution::kFailed);
  }
  const Pid parent = q.alt_parent_;
  const std::size_t idx = q.alt_index_;
  if (cfg_.elimination == Elimination::kSynchronous ||
      q.state_ == ProcState::kBlocked) {
    finalize_kill(q, ExitKind::kEliminated);
  } else {
    // Asynchronous elimination: logically dead immediately (no observable
    // effects are possible) but the corpse keeps consuming cycles until the
    // termination instruction reaches it — the throughput cost of 4.1.
    q.doomed_ = true;
    stats_.overhead_work += cfg_.machine.kill_cost;
    Event ev;
    ev.time = now_ + cfg_.machine.kill_cost;
    ev.kind = EventKind::kAsyncKill;
    ev.pid = q.pid_;
    push_event(std::move(ev));
  }
  if (parent != kNoPid) {
    auto pit = procs_.find(parent);
    if (pit != procs_.end() && pit->second->alt_.has_value()) {
      remove_world(*pit->second, idx, q.pid_);
    }
  }
}

void Kernel::finalize_kill(SimProcess& p, ExitKind kind) {
  if (!is_live(p)) return;
  switch (kind) {
    case ExitKind::kAborted:
      stats_.aborts++;
      emit(TraceEvent::Kind::kAbort, p.pid_);
      break;
    case ExitKind::kEliminated:
      stats_.eliminations++;
      emit(TraceEvent::Kind::kEliminate, p.pid_);
      break;
    case ExitKind::kTooLate:
      stats_.too_lates++;
      emit(TraceEvent::Kind::kTooLate, p.pid_);
      break;
    default:
      break;
  }
  if (p.state_ == ProcState::kRunning) release_cpu(p);
  p.state_ = ProcState::kDead;
  p.exit_ = kind;
  p.finished_at_ = now_;
  p.doomed_ = false;
  ++p.generation_;
  unbind_all(p);
  p.inbox_.clear();
  account_finished(p);
}

void Kernel::account_finished(SimProcess& p) {
  if (p.exit_ == ExitKind::kCompleted) {
    stats_.useful_work += p.cpu_time_;
  } else {
    stats_.wasted_work += p.cpu_time_;
  }
}

bool Kernel::canonicalize(Message& m) {
  if (m.sender_speculative) {
    auto it = resolutions_.find(m.sender);
    if (it != resolutions_.end()) {
      if (it->second == Resolution::kFailed) return false;
      m.sender_speculative = false;
    }
  }
  Predicate stripped;
  for (Pid pid : m.sending_predicate.must_complete()) {
    auto it = resolutions_.find(pid);
    if (it == resolutions_.end()) {
      stripped.require_complete(pid);
    } else if (it->second == Resolution::kFailed) {
      return false;  // the sending world is dead; the message never happened
    }
  }
  for (Pid pid : m.sending_predicate.must_fail()) {
    auto it = resolutions_.find(pid);
    if (it == resolutions_.end()) {
      stripped.require_fail(pid);
    } else if (it->second == Resolution::kCompleted) {
      return false;
    }
  }
  m.sending_predicate = std::move(stripped);
  return true;
}

// --------------------------------------------------------------------------
// Ports
// --------------------------------------------------------------------------

void Kernel::bind_port(SimProcess& p, Port port) {
  auto& binders = port_bindings_[port];
  if (std::find(binders.begin(), binders.end(), p.pid_) == binders.end()) {
    binders.push_back(p.pid_);
  }
  if (std::find(p.bound_ports_.begin(), p.bound_ports_.end(), port) ==
      p.bound_ports_.end()) {
    p.bound_ports_.push_back(port);
  }
  auto bit = port_backlog_.find(port);
  if (bit != port_backlog_.end() && !bit->second.empty()) {
    std::vector<Message> backlog = std::move(bit->second);
    port_backlog_.erase(bit);
    for (Message& m : backlog) deliver_now(p, std::move(m));
  }
}

void Kernel::unbind_all(SimProcess& p) {
  for (Port port : p.bound_ports_) {
    auto it = port_bindings_.find(port);
    if (it == port_bindings_.end()) continue;
    auto& binders = it->second;
    binders.erase(std::remove(binders.begin(), binders.end(), p.pid_), binders.end());
    if (binders.empty()) port_bindings_.erase(it);
  }
  p.bound_ports_.clear();
}

void Kernel::crash_node_at(NodeId node, SimTime when) {
  ALTX_REQUIRE(node < nodes_.size(), "crash_node_at: node out of range");
  ALTX_REQUIRE(when >= now_, "crash_node_at: time in the past");
  Event ev;
  ev.time = when;
  ev.kind = EventKind::kNodeCrash;
  ev.node = node;
  push_event(std::move(ev));
}

void Kernel::on_node_crash(const Event& ev) {
  Node& n = nodes_[ev.node];
  if (n.crashed) return;
  n.crashed = true;
  emit(TraceEvent::Kind::kNodeCrash, kNoPid, kNoPid);
  for (auto& cpu : n.cpus) cpu.current = kNoPid;
  n.ready.clear();
  // Every world on the node dies: resolve as failed (cascading to dependent
  // worlds and child subtrees) and terminate physically right now.
  std::vector<SimProcess*> victims;
  for (auto& [pid, p] : procs_) {
    if (p->node_ == ev.node && is_live(*p)) victims.push_back(p.get());
  }
  for (SimProcess* p : victims) {
    if (!is_live(*p)) continue;
    eliminate_world(*p);                          // logical death + cascade
    if (is_live(*p)) finalize_kill(*p, ExitKind::kEliminated);  // no corpses
  }
}

SimProcess& Kernel::proc(Pid pid) {
  auto it = procs_.find(pid);
  ALTX_ASSERT(it != procs_.end(), "unknown pid " + std::to_string(pid));
  return *it->second;
}

}  // namespace altx::sim
