// Deterministic fault injection for the real-process backend.
//
// The simulator can crash a node at a chosen instant (`Kernel::crash_node_at`)
// and the predicate cascade cleans up; the POSIX backend runs on a real
// kernel, where faults arrive as signals, hangs, and failed syscalls. This
// injector lets both backends run the same fault matrix: child processes
// consult it at their commit/abort points and (deterministically, from the
// seed) die, hang, stall, or lose their commit; the parent consults it before
// each fork() to simulate resource exhaustion (EAGAIN).
//
// Every decision is a pure function of (seed, attempt, child index), so a
// fault plan replays byte-identically: the same seed produces the same fate
// for the same child on the same attempt, across runs and across machines.
// The attempt counter advances once per spawned group (AltGroup::alt_spawn /
// await_all), which is what makes retries see fresh draws while staying
// reproducible.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace altx::posix {

/// What the injector does to a child that reaches its sync point (or to the
/// parent's fork). Ordered roughly by violence.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCrashSegv,   // re-arm SIG_DFL and raise SIGSEGV: a wild-pointer death
  kCrashKill,   // raise SIGKILL: the OOM-killer / operator kill
  kHang,        // sleep far past any plausible deadline (livelock)
  kDelay,       // stall for `delay`, then proceed normally (GC pause, swap)
  kEarlyExit,   // _exit with an unexpected status, no synchronization
  kDropCommit,  // consume the commit token but never deliver the result
                // frame: a crash in the window between synchronizing and
                // publishing — the nastiest at-most-once stressor
  kCpuSpin,     // busy-loop for `spin_for` burning CPU, then exit without
                // synchronizing: the runaway arm the governor's CPU budget
                // (and RLIMIT_CPU backstop) exists to contain
  kMemHog,      // allocate and touch `hog_mb` MiB, stall holding it, then
                // exit without synchronizing: the memory-pressure source
                // behind PSI shedding and RLIMIT_AS
};

const char* to_string(FaultKind kind);

/// Per-fault probabilities. Child-side probabilities must sum to <= 1; the
/// remainder is the no-fault case. `fork_fail` is drawn independently on the
/// parent side per fork attempt.
struct FaultProfile {
  double crash_segv = 0.0;
  double crash_kill = 0.0;
  double hang = 0.0;
  double delay = 0.0;
  double early_exit = 0.0;
  double drop_commit = 0.0;
  double cpu_spin = 0.0;
  double mem_hog = 0.0;
  double fork_fail = 0.0;   // parent side: fork() reports EAGAIN, permanently
  double fork_storm = 0.0;  // parent side: fork() EAGAINs transiently — the
                            // first `storm_tries` in-place retries fail, then
                            // the fork succeeds (pid-exhaustion burst)

  std::chrono::milliseconds delay_for{20};     // kDelay stall
  std::chrono::milliseconds hang_for{600'000};  // kHang: 10 min ~ forever
  std::chrono::milliseconds spin_for{2'000};   // kCpuSpin busy-loop length
  std::uint64_t hog_mb = 64;                   // kMemHog allocation size
  int storm_tries = 2;                         // fork_storm: failing tries

  [[nodiscard]] double child_total() const {
    return crash_segv + crash_kill + hang + delay + early_exit + drop_commit +
           cpu_spin + mem_hog;
  }
  void validate() const;

  /// Parses "crash_segv=0.1,hang=0.05,fork_fail=0.02,delay_ms=10" — the
  /// ALTX_FAULT_PLAN format. Unknown keys throw UsageError.
  static FaultProfile parse(const std::string& spec);
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultProfile profile);

  /// Reads ALTX_FAULT_PLAN (profile spec) and ALTX_FAULT_SEED (u64) from the
  /// environment. Returns nullptr when ALTX_FAULT_PLAN is unset — faults are
  /// strictly opt-in.
  static std::unique_ptr<FaultInjector> from_env();

  /// The fate of child `child_index` (1-based) on attempt `attempt`.
  /// Pure: depends only on (seed, attempt, child_index).
  [[nodiscard]] FaultKind decide(std::uint64_t attempt, int child_index) const;

  /// Whether the parent's fork() of child `child_index` on `attempt` should
  /// be made to fail with EAGAIN. `try_n` is the in-place retry ordinal
  /// (0 = first try): a `fork_fail` draw fails every try, a `fork_storm`
  /// draw fails only tries below `storm_tries` — transient exhaustion the
  /// spawn loop's bounded retry is meant to ride out. Pure, independent
  /// stream from decide().
  [[nodiscard]] bool fork_fails(std::uint64_t attempt, int child_index,
                                int try_n = 0) const;

  /// Parent side, once per spawned group: returns the attempt id the group's
  /// children will consult and advances the counter.
  std::uint64_t begin_attempt() { return attempt_++; }

  /// Child side, at the commit/abort point. Executes the decided fault:
  /// kCrashSegv/kCrashKill/kHang/kEarlyExit never return; kDelay stalls and
  /// then returns kNone. Only kNone and kDropCommit are ever returned — the
  /// caller must handle kDropCommit (lose the result on the floor).
  FaultKind at_sync_point(std::uint64_t attempt, int child_index) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultProfile& profile() const { return profile_; }

 private:
  std::uint64_t seed_;
  FaultProfile profile_;
  std::uint64_t attempt_ = 0;
};

}  // namespace altx::posix
