// alt_spawn / alt_wait over real POSIX processes (paper section 3.2).
//
// The paper's two primitives, implemented with the same UNIX machinery the
// authors measured:
//
//   alt_spawn(n)  — forks n alternates; returns 0 in the parent and 1..n in
//                   the children (the switch() idiom of section 3.2). Every
//                   child gets a COW view of the parent's whole address
//                   space, courtesy of fork().
//
//   alt_wait(t)   — in the parent: waits (bounded by the TIMEOUT) for the
//                   first child to synchronize, absorbs its result (and, when
//                   an AltHeap is attached, its dirty pages), then eliminates
//                   the siblings. In a child: attempts the synchronization.
//
// At-most-once synchronization is a 0-1 semaphore built from a pipe: the
// parent deposits a single token byte; the first child to read it commits;
// later children find the pipe empty and are "too late" (section 3.2.1) —
// they terminate themselves.
//
// Supervision: every child's fate is classified when it is reaped
// (committed / aborted / too-late / crashed(signal) / hung / eliminated),
// and a failed alt_wait distinguishes "every guard failed" from "deadline
// passed with children still live" — the information a retry policy needs
// (see posix/supervisor.hpp). An optional FaultInjector is consulted at the
// children's sync points and before each fork, so the real backend can run
// the same seeded fault matrix as the simulator.
//
// Observability: when tracing is enabled (ALTX_TRACE, or programmatically —
// see obs/trace.hpp), every group takes a fresh race id and both sides
// narrate into the shared ring: the parent emits race_begin / fork /
// child_fate / race_decided, each child emits guard_start and its own
// synchronization outcome (commit_attempt, commit_won, too_late,
// guard_fail). Child events survive SIGKILL — the ring is a MAP_SHARED
// mapping created before the forks. Disabled, each site costs one
// predicted branch.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "posix/alt_heap.hpp"
#include "posix/fault.hpp"
#include "posix/fd.hpp"
#include "posix/reap.hpp"

namespace altx::posix {

/// When losing siblings are terminated, relative to alt_wait returning.
enum class Eliminate {
  kSynchronous,   // killed and reaped before alt_wait returns
  kAsynchronous,  // killed immediately, reaped later (finish()/destructor)
};

/// Classification of one child's end, assigned when it is reaped.
enum class ChildFate : std::uint8_t {
  kRunning,     // not yet exited (or not yet reaped)
  kCommitted,   // took the token and delivered its result (the winner)
  kTooLate,     // synchronized after the token was gone (section 3.2.1)
  kAborted,     // guard failed: child_abort
  kCrashed,     // died of a signal we did not send, or an unexpected exit —
                // includes a commit lost between token and result delivery
  kHung,        // still live at the deadline; killed by the parent
  kEliminated,  // healthy loser killed by the parent after a winner emerged
  kOverBudget,  // killed by the governor's watchdog: wall/CPU budget blown
                // or shed under memory pressure — contained, not crashed
  kPredictedLoser,  // killed by the watchdog's prediction rule: elapsed wall
                    // overran the arm's own historical kill quantile
                    // (ALTX_PRED_KILL_Q) while a sibling was still live
};

const char* to_string(ChildFate fate);

struct ChildStatus {
  pid_t pid = -1;
  ChildFate fate = ChildFate::kRunning;
  int signal = 0;      // terminating signal when fate == kCrashed (0 = exit)
  int exit_code = -1;  // raw exit status when the child exited normally

  /// Resource bill from wait4 at reap time — valid for every fate,
  /// including losers we SIGKILLed (the kernel keeps the ledger for us).
  ChildUsage usage;

  /// Dirty-page census the child reported just before its sync point
  /// (kChildPages), read back from the shared census arena. Zero for a
  /// child that died before reaching a sync point — a mid-guard SIGKILL
  /// leaves its COW cost unknowable.
  std::uint64_t dirty_pages = 0;
  std::uint64_t dirty_bytes = 0;

  /// Parent-side wall clamps: CLOCK_MONOTONIC right after fork() returned
  /// the pid, and at reap. reap_ns - spawn_ns is the arm's wall time as the
  /// history store records it (for losers it includes the elimination lag —
  /// the price actually paid for launching the arm).
  std::uint64_t spawn_ns = 0;
  std::uint64_t reap_ns = 0;
};

/// Why alt_wait returned nullopt — or that it did not.
enum class WaitVerdict : std::uint8_t {
  kUndecided,  // alt_wait has not (successfully) completed
  kWinner,     // a child committed; the AltWinner was returned
  kAllFailed,  // every child exited without committing (guards failed,
               // crashed, or lost their commit) before the deadline
  kTimeout,    // the deadline passed with at least one child still live
};

const char* to_string(WaitVerdict verdict);

class SpeculationGovernor;

struct AltGroupOptions {
  Eliminate elimination = Eliminate::kSynchronous;
  AltHeap* heap = nullptr;        // optional shared-state arena to absorb
  FaultInjector* fault = nullptr; // optional seeded fault plan

  /// Resource governor consulted at spawn (admission + watchdog + child
  /// rlimits). nullptr resolves to SpeculationGovernor::global() — the
  /// env-configured process governor, itself nullptr when no ALTX_GOV_*
  /// knob is set, so ungoverned runs cost one null check.
  SpeculationGovernor* governor = nullptr;

  /// SIGTERM → SIGKILL grace for survivor elimination. Negative (the
  /// default) resolves from ALTX_KILL_GRACE_MS; 0 keeps the historical
  /// straight-SIGKILL behavior.
  std::chrono::milliseconds kill_grace{-1};

  /// Per-child predicted-kill deadlines (ns of elapsed wall), indexed by
  /// child number - 1, handed to the governor's watchdog at registration.
  /// 0 (or an empty vector) = this child has no history and is never
  /// predicted-killed. Filled by race<T>() from the SpeculationPlanner.
  std::vector<std::uint64_t> pred_kill_ns;
};

struct AltWinner {
  int index = 0;       // 1-based alternative number (alt_spawn's return)
  Bytes result;        // bytes the winner passed to child_commit
  std::size_t pages_absorbed = 0;
};

/// What the speculation cost, rolled up over every reaped child of one
/// block (paper section 3.1's bet, measured): the winner's work is the
/// price of the answer, everything else is the price of getting it fast.
struct SpeculationReport {
  std::uint64_t total_cpu_ns = 0;     // every child, winners and losers
  std::uint64_t winner_cpu_ns = 0;    // the committed child (0 = no winner)
  std::uint64_t wasted_cpu_ns = 0;    // total - winner: the losers' bill
  std::uint64_t discarded_pages = 0;  // losers' dirty COW pages, as reported
  std::uint64_t discarded_bytes = 0;  //   before their sync points
  int children_costed = 0;            // reaped children in this rollup

  /// total work / winner work — 1.0 is free speculation, N is "we paid for
  /// N alternatives to get one answer". 0 when there is no winner to
  /// normalize by (FAIL / timeout: every cycle was wasted).
  [[nodiscard]] double overhead_ratio() const {
    if (winner_cpu_ns == 0) return 0.0;
    return static_cast<double>(total_cpu_ns) /
           static_cast<double>(winner_cpu_ns);
  }
};

class AltGroup {
 public:
  explicit AltGroup(AltGroupOptions options = {});
  ~AltGroup();

  AltGroup(const AltGroup&) = delete;
  AltGroup& operator=(const AltGroup&) = delete;

  /// Forks n alternates. Returns 0 in the parent, 1..n in each child.
  /// In children, the process must finish via child_commit or child_abort.
  /// On a mid-loop fork() failure the partial cohort is killed and reaped
  /// before SystemError is thrown, so the caller can retry with a fresh
  /// group and no process leaks.
  int alt_spawn(int n);

  /// Child side: attempt the synchronization with a result payload. If this
  /// child is first, its payload (and dirty heap pages) reach the parent;
  /// otherwise it is too late. Never returns. Consults the FaultInjector
  /// first: the child may crash, hang, stall, or lose the commit here.
  [[noreturn]] void child_commit(const Bytes& result);

  /// Child side: the guard failed; abort without synchronizing. Never
  /// returns. Also a FaultInjector sync point.
  [[noreturn]] void child_abort();

  /// Parent side: waits for a winner. Returns std::nullopt when every child
  /// aborted or the timeout expired (the FAIL arm); verdict() then says
  /// which. Idempotent: a second call returns the same verdict.
  std::optional<AltWinner> alt_wait(std::chrono::milliseconds timeout);

  /// Reaps any remaining children (no-op when elimination was synchronous).
  void finish();

  /// Number of children that aborted (available after alt_wait).
  [[nodiscard]] int aborted_children() const { return aborted_; }

  /// Per-child classification. Fates are final once the child is reaped:
  /// after a synchronous alt_wait (or finish()) no kRunning entries remain.
  [[nodiscard]] const std::vector<ChildStatus>& child_statuses() const {
    return status_;
  }

  /// How many children ended with `fate` so far.
  [[nodiscard]] int count_fate(ChildFate fate) const;

  /// Why the last alt_wait came out the way it did.
  [[nodiscard]] WaitVerdict verdict() const { return verdict_kind_; }

  /// The speculation ledger over the children reaped so far: wasted CPU,
  /// discarded COW pages, overhead ratio. Complete after a synchronous
  /// alt_wait (or finish()); with asynchronous elimination it covers
  /// whatever has been reaped when asked.
  [[nodiscard]] SpeculationReport speculation_report() const;

  /// The trace id grouping this block's events (0 when tracing is off).
  [[nodiscard]] std::uint32_t race_id() const { return race_id_; }

 private:
  /// One census slot per child in a MAP_SHARED arena: the child writes its
  /// dirty-page count just before its sync point (where a fault injector
  /// may SIGKILL it), the parent reads it at rollup. `ready` is the
  /// publication flag — a torn write is never read.
  struct CensusSlot {
    std::uint64_t dirty_pages;
    std::uint64_t dirty_bytes;
    std::atomic<std::uint32_t> ready;
  };

  void kill_survivors();
  void reap_all();
  void release_remaining_tokens();  // admission tokens not yet returned
  void record_exit(std::size_t i, int status, const ChildUsage& usage);
  void publish_census();         // child side, before the sync point
  void finalize_accounting();    // parent side, once every child is reaped

  AltGroupOptions opts_;
  std::vector<pid_t> children_;
  std::vector<bool> reaped_;
  std::vector<bool> killed_;  // we sent SIGKILL before it was reaped
  std::vector<ChildStatus> status_;
  CensusSlot* census_ = nullptr;  // shared arena, one slot per child
  std::size_t census_slots_ = 0;
  bool accounted_ = false;  // kSpecReport emitted / metrics rolled up
  Pipe token_;   // 0-1 semaphore: one byte, first reader commits
  Pipe result_;  // winner -> parent: index + payload + heap patch
  int my_index_ = 0;  // 0 in parent
  std::uint64_t child_run_t0_ = 0;  // child side: arm_run span begin
  int tokens_held_ = 0;      // admission tokens taken for this cohort
  int tokens_released_ = 0;  // ... of which already returned (1 per reap)
  std::uint32_t race_id_ = 0;        // trace id; children inherit it
  std::uint64_t start_ns_ = 0;       // alt_spawn timestamp (traced runs)
  std::uint64_t fault_attempt_ = 0;  // attempt id children consult
  bool spawned_ = false;
  bool decided_ = false;
  std::optional<AltWinner> verdict_;
  WaitVerdict verdict_kind_ = WaitVerdict::kUndecided;
  int aborted_ = 0;
};

}  // namespace altx::posix
