// alt_spawn / alt_wait over real POSIX processes (paper section 3.2).
//
// The paper's two primitives, implemented with the same UNIX machinery the
// authors measured:
//
//   alt_spawn(n)  — forks n alternates; returns 0 in the parent and 1..n in
//                   the children (the switch() idiom of section 3.2). Every
//                   child gets a COW view of the parent's whole address
//                   space, courtesy of fork().
//
//   alt_wait(t)   — in the parent: waits (bounded by the TIMEOUT) for the
//                   first child to synchronize, absorbs its result (and, when
//                   an AltHeap is attached, its dirty pages), then eliminates
//                   the siblings. In a child: attempts the synchronization.
//
// At-most-once synchronization is a 0-1 semaphore built from a pipe: the
// parent deposits a single token byte; the first child to read it commits;
// later children find the pipe empty and are "too late" (section 3.2.1) —
// they terminate themselves.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "posix/alt_heap.hpp"
#include "posix/fd.hpp"

namespace altx::posix {

/// When losing siblings are terminated, relative to alt_wait returning.
enum class Eliminate {
  kSynchronous,   // killed and reaped before alt_wait returns
  kAsynchronous,  // killed immediately, reaped later (finish()/destructor)
};

struct AltGroupOptions {
  Eliminate elimination = Eliminate::kSynchronous;
  AltHeap* heap = nullptr;  // optional shared-state arena to absorb
};

struct AltWinner {
  int index = 0;       // 1-based alternative number (alt_spawn's return)
  Bytes result;        // bytes the winner passed to child_commit
  std::size_t pages_absorbed = 0;
};

class AltGroup {
 public:
  explicit AltGroup(AltGroupOptions options = {});
  ~AltGroup();

  AltGroup(const AltGroup&) = delete;
  AltGroup& operator=(const AltGroup&) = delete;

  /// Forks n alternates. Returns 0 in the parent, 1..n in each child.
  /// In children, the process must finish via child_commit or child_abort.
  int alt_spawn(int n);

  /// Child side: attempt the synchronization with a result payload. If this
  /// child is first, its payload (and dirty heap pages) reach the parent;
  /// otherwise it is too late. Never returns.
  [[noreturn]] void child_commit(const Bytes& result);

  /// Child side: the guard failed; abort without synchronizing. Never
  /// returns.
  [[noreturn]] void child_abort();

  /// Parent side: waits for a winner. Returns std::nullopt when every child
  /// aborted or the timeout expired (the FAIL arm). Idempotent: a second call
  /// returns the same verdict.
  std::optional<AltWinner> alt_wait(std::chrono::milliseconds timeout);

  /// Reaps any remaining children (no-op when elimination was synchronous).
  void finish();

  /// Number of children that aborted (available after alt_wait).
  [[nodiscard]] int aborted_children() const { return aborted_; }

 private:
  void kill_survivors();
  void reap_all();

  AltGroupOptions opts_;
  std::vector<pid_t> children_;
  std::vector<bool> reaped_;
  Pipe token_;   // 0-1 semaphore: one byte, first reader commits
  Pipe result_;  // winner -> parent: index + payload + heap patch
  int my_index_ = 0;  // 0 in parent
  bool spawned_ = false;
  bool decided_ = false;
  std::optional<AltWinner> verdict_;
  int aborted_ = 0;
};

}  // namespace altx::posix
