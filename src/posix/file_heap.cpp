#include "posix/file_heap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace altx::posix {

FileHeap::FileHeap(const std::string& path, std::size_t pages) : path_(path) {
  ALTX_REQUIRE(pages >= 1, "FileHeap: need at least one page");
  page_size_ = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  pages_ = pages;
  bytes_ = pages * page_size_;
  fd_ = Fd(::open(path.c_str(), O_CREAT | O_RDWR, 0600));
  if (!fd_.valid()) throw_errno("open(FileHeap)");
  struct stat st{};
  if (::fstat(fd_.get(), &st) != 0) throw_errno("fstat(FileHeap)");
  if (static_cast<std::size_t>(st.st_size) < bytes_) {
    if (::ftruncate(fd_.get(), static_cast<off_t>(bytes_)) != 0) {
      throw_errno("ftruncate(FileHeap)");
    }
  }
  map();
  register_trackable(this);
}

FileHeap::~FileHeap() {
  unregister_trackable(this);
  unmap();
}

void FileHeap::map() {
  // MAP_PRIVATE over the file: reads come from the file, writes COW into
  // anonymous pages — speculation never reaches the disk by itself.
  base_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_PRIVATE,
                 fd_.get(), 0);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    throw_errno("mmap(FileHeap)");
  }
}

void FileHeap::unmap() {
  if (base_ != nullptr) {
    ::munmap(base_, bytes_);
    base_ = nullptr;
  }
}

void FileHeap::begin_tracking() {
  dirty_.clear();
  if (::mprotect(base_, bytes_, PROT_READ) != 0) throw_errno("mprotect(READ)");
  tracking_ = true;
}

void FileHeap::end_tracking() {
  if (::mprotect(base_, bytes_, PROT_READ | PROT_WRITE) != 0) {
    throw_errno("mprotect(RW)");
  }
  tracking_ = false;
}

bool FileHeap::handle_fault(void* addr) {
  if (!tracking_) return false;
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto b = reinterpret_cast<std::uintptr_t>(base_);
  if (a < b || a >= b + bytes_) return false;
  const std::size_t page = (a - b) / page_size_;
  if (::mprotect(static_cast<std::uint8_t*>(base_) + page * page_size_,
                 page_size_, PROT_READ | PROT_WRITE) != 0) {
    return false;
  }
  dirty_.push_back(static_cast<std::uint32_t>(page));
  return true;
}

Bytes FileHeap::serialize_dirty() const {
  Bytes out;
  ByteWriter w(out);
  w.u64(page_size_);
  w.u64(dirty_.size());
  for (std::uint32_t page : dirty_) {
    w.u32(page);
    w.blob(static_cast<const std::uint8_t*>(base_) + page * page_size_,
           page_size_);
  }
  return out;
}

std::size_t FileHeap::apply_patch(const Bytes& patch) {
  ByteReader r(patch);
  const std::uint64_t psz = r.u64();
  ALTX_REQUIRE(psz == page_size_, "FileHeap::apply_patch: page size mismatch");
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t page = r.u32();
    ALTX_REQUIRE(page < pages_, "FileHeap::apply_patch: page out of range");
    const Bytes content = r.blob();
    ALTX_REQUIRE(content.size() == page_size_,
                 "FileHeap::apply_patch: bad page payload");
    std::memcpy(static_cast<std::uint8_t*>(base_) + page * page_size_,
                content.data(), page_size_);
    note_pending(page);
  }
  return n;
}

void FileHeap::mark_dirty(std::uint32_t page) {
  ALTX_REQUIRE(page < pages_, "FileHeap::mark_dirty: page out of range");
  note_pending(page);
}

void FileHeap::note_pending(std::uint32_t page) {
  if (std::find(pending_.begin(), pending_.end(), page) == pending_.end()) {
    pending_.push_back(page);
  }
}

std::size_t FileHeap::commit() {
  for (std::uint32_t page : pending_) {
    const auto off = static_cast<off_t>(static_cast<std::size_t>(page) * page_size_);
    const auto* src = static_cast<const std::uint8_t*>(base_) + off;
    std::size_t done = 0;
    while (done < page_size_) {
      const ssize_t w = ::pwrite(fd_.get(), src + done, page_size_ - done,
                                 off + static_cast<off_t>(done));
      if (w < 0) {
        if (errno == EINTR) continue;
        throw_errno("pwrite(FileHeap)");
      }
      done += static_cast<std::size_t>(w);
    }
  }
  if (::fsync(fd_.get()) != 0) throw_errno("fsync(FileHeap)");
  const std::size_t n = pending_.size();
  pending_.clear();
  return n;
}

void FileHeap::rollback() {
  unmap();
  map();
  pending_.clear();
  dirty_.clear();
  tracking_ = false;
}

}  // namespace altx::posix
