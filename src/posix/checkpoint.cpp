#include "posix/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "posix/fd.hpp"

namespace altx::posix {

namespace {

constexpr std::uint64_t kMagic = 0x414c545843505431ULL;  // "ALTXCPT1"

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace

void checkpoint_save(const std::string& path, const Bytes& image) {
  Fd fd(::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600));
  if (!fd.valid()) throw_errno("open(checkpoint)");
  std::uint64_t header[2] = {kMagic, image.size()};
  write_all(fd.get(), header, sizeof header);
  if (!image.empty()) write_all(fd.get(), image.data(), image.size());
  // The paper's checkpoint is durable (an executable file on the NFS);
  // include the sync in the measured cost.
  if (::fsync(fd.get()) != 0) throw_errno("fsync(checkpoint)");
}

Bytes checkpoint_load(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.valid()) throw_errno("open(checkpoint)");
  std::uint64_t header[2] = {0, 0};
  if (!read_exact(fd.get(), header, sizeof header)) {
    throw SystemError("checkpoint_load: empty file", EIO);
  }
  ALTX_REQUIRE(header[0] == kMagic, "checkpoint_load: bad magic");
  Bytes image(header[1]);
  if (!image.empty() && !read_exact(fd.get(), image.data(), image.size())) {
    throw SystemError("checkpoint_load: truncated image", EIO);
  }
  return image;
}

RforkResult rfork_simulated(std::size_t image_bytes, double simulated_network_ms,
                            const std::string& dir) {
  RforkResult r;
  r.image_bytes = image_bytes;
  const std::string path =
      dir + "/altx_rfork_" + std::to_string(::getpid()) + ".ckpt";

  // Build a state image with non-trivial content so compression-by-zero
  // can't flatter the numbers.
  Bytes image(image_bytes);
  Rng rng(image_bytes + 1);
  for (std::size_t i = 0; i < image.size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(image.data() + i, &v, std::min<std::size_t>(8, image.size() - i));
  }

  const auto t_total = std::chrono::steady_clock::now();
  checkpoint_save(path, image);
  r.checkpoint_ms = ms_since(t_total);

  Pipe ack = Pipe::create();
  const pid_t pid = ::fork();
  if (pid < 0) throw_errno("fork(rfork)");
  if (pid == 0) {
    // The "remote" node: restore the image and acknowledge with a timing.
    const auto t_restore = std::chrono::steady_clock::now();
    double restore_ms = 0;
    try {
      const Bytes restored = checkpoint_load(path);
      restore_ms = ms_since(t_restore);
      if (restored.size() != image_bytes) restore_ms = -1;
    } catch (...) {
      restore_ms = -1;
    }
    write_all(ack.write_end.get(), &restore_ms, sizeof restore_ms);
    _exit(0);
  }
  double restore_ms = -1;
  if (!read_exact(ack.read_end.get(), &restore_ms, sizeof restore_ms)) {
    restore_ms = -1;
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ::unlink(path.c_str());
  ALTX_REQUIRE(restore_ms >= 0, "rfork_simulated: restore failed");
  r.restore_ms = restore_ms;
  r.total_ms = ms_since(t_total) + simulated_network_ms;
  return r;
}

}  // namespace altx::posix
