#include "posix/predictor.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "posix/governor.hpp"

namespace altx::posix {

namespace {

double penv_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtod(s, nullptr);
}

std::uint64_t penv_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 0);
}

double clamp_q(double q) { return std::clamp(q, 0.0, 1.0); }

}  // namespace

const char* to_string(ArmDecision decision) {
  switch (decision) {
    case ArmDecision::kLaunch: return "launch";
    case ArmDecision::kHedge: return "hedge";
    case ArmDecision::kSkip: return "skip";
  }
  return "?";
}

PredictorConfig PredictorConfig::from_env() {
  PredictorConfig c;
  c.enabled = penv_u64("ALTX_PRED", 0) != 0;
  c.launch_q = clamp_q(penv_double("ALTX_PRED_LAUNCH_Q", c.launch_q));
  c.kill_q = clamp_q(penv_double("ALTX_PRED_KILL_Q", c.kill_q));
  c.hedge_ratio =
      std::max(1.0, penv_double("ALTX_PRED_HEDGE_RATIO", c.hedge_ratio));
  c.stage_slack =
      std::max(0.0, penv_double("ALTX_PRED_STAGE_SLACK", c.stage_slack));
  c.min_samples = static_cast<std::uint32_t>(
      penv_u64("ALTX_PRED_MIN_SAMPLES", c.min_samples));
  c.min_success =
      clamp_q(penv_double("ALTX_PRED_MIN_SUCCESS", c.min_success));
  c.max_stage_ms = penv_u64("ALTX_PRED_MAX_STAGE_MS", c.max_stage_ms);
  return c;
}

SpeculationPlanner::SpeculationPlanner(PredictorConfig cfg,
                                       const obs::HistoryStore* store)
    : cfg_(cfg), store_(store) {}

SpeculationPlan SpeculationPlanner::plan(std::uint64_t site_id, int n_alts,
                                         bool under_pressure) const {
  SpeculationPlan p;
  if (n_alts <= 0) return p;
  p.arms.resize(static_cast<std::size_t>(n_alts));
  for (int i = 0; i < n_alts; ++i) {
    p.arms[static_cast<std::size_t>(i)].arm =
        static_cast<std::uint32_t>(i) + 1;
  }
  p.launched = n_alts;
  if (store_ == nullptr || site_id == 0) return p;  // all-launch, inactive

  // Gather each arm's prediction. An arm below the sample floor stays cold:
  // predicted_wall_ns == 0 marks "no usable history".
  bool any_warm = false;
  for (ArmPlan& a : p.arms) {
    const obs::ArmStats* st = store_->find(site_id, a.arm);
    if (st == nullptr || st->total < cfg_.min_samples) continue;
    a.samples = st->total;
    a.success_rate = st->success_rate();
    a.predicted_wall_ns = std::max<std::uint64_t>(
        1, st->wall_quantile(cfg_.launch_q));
    a.kill_after_ns = std::max<std::uint64_t>(1, st->wall_quantile(cfg_.kill_q));
    any_warm = true;
  }
  if (!any_warm) return p;  // cold store ≡ predict-off plan
  p.active = true;

  // The leader: the warm arm with the lowest expected cost — predicted wall
  // inflated by unreliability (a 10 ms arm that wins half the time costs
  // 20 ms per answer in expectation). Ties break to the lowest arm index,
  // which keeps plans deterministic for a fixed store.
  double best = 0.0;
  for (const ArmPlan& a : p.arms) {
    if (a.predicted_wall_ns == 0) continue;
    const double cost = static_cast<double>(a.predicted_wall_ns) /
                        std::max(a.success_rate, 0.01);
    if (p.leader == 0 || cost < best) {
      best = cost;
      p.leader = static_cast<int>(a.arm);
    }
  }
  const ArmPlan& leader = p.arms[static_cast<std::size_t>(p.leader - 1)];
  const std::uint64_t stage_ns = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(
          static_cast<double>(leader.predicted_wall_ns) * cfg_.stage_slack),
      cfg_.max_stage_ms * 1'000'000ULL);

  // Partition the rest. Cold arms always launch (exploration); warm arms
  // launch while their expected cost is within hedge_ratio of the leader's
  // (the PI gain of having them race covers their bandwidth charge), hedge
  // beyond it, and — under pressure only — skip when history says they
  // essentially never win. The comparison must use the same
  // unreliability-inflated cost as the leader election, not raw walls: a
  // perpetual loser's recorded wall is censored at elimination time (it
  // died when the leader committed), so by wall alone it looks exactly as
  // fast as the leader and would never be hedged.
  for (ArmPlan& a : p.arms) {
    if (static_cast<int>(a.arm) == p.leader) continue;
    if (a.predicted_wall_ns == 0) continue;  // cold: launch
    const double cost = static_cast<double>(a.predicted_wall_ns) /
                        std::max(a.success_rate, 0.01);
    const double ratio = cost / best;
    if (ratio <= cfg_.hedge_ratio) continue;  // cheap enough: launch
    if (under_pressure && cfg_.skip_enabled &&
        a.success_rate < cfg_.min_success) {
      a.decision = ArmDecision::kSkip;
      a.kill_after_ns = 0;  // nothing to kill: the arm does no work
    } else {
      a.decision = ArmDecision::kHedge;
      a.stage_after_ns = stage_ns;
      // The sleep does not count against the arm: its kill deadline starts
      // after the deferral, measured from fork like the watchdog does.
      a.kill_after_ns += stage_ns;
    }
  }
  for (const ArmPlan& a : p.arms) {
    switch (a.decision) {
      case ArmDecision::kLaunch: break;
      case ArmDecision::kHedge: ++p.hedged; break;
      case ArmDecision::kSkip: ++p.skipped; break;
    }
  }
  p.launched = n_alts - p.hedged - p.skipped;
  return p;
}

bool SpeculationPlanner::env_enabled() noexcept {
  static const bool on = penv_u64("ALTX_PRED", 0) != 0;
  return on;
}

SpeculationPlanner* SpeculationPlanner::global() noexcept {
  static const std::unique_ptr<SpeculationPlanner> g = [] {
    const PredictorConfig c = PredictorConfig::from_env();
    if (!c.enabled) return std::unique_ptr<SpeculationPlanner>();
    // The global planner reads whatever history store the process has; a
    // null store just means every plan comes back inactive until
    // ALTX_HISTORY (or a test) provides one.
    return std::make_unique<SpeculationPlanner>(c,
                                                obs::HistoryStore::global());
  }();
  return g.get();
}

bool governor_under_pressure(const SpeculationGovernor* gov) {
  if (gov == nullptr) return false;
  const GovernorConfig& c = gov->config();
  return c.tokens > 0 && gov->effective_tokens() < c.tokens;
}

}  // namespace altx::posix
