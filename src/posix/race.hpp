// race<T>: the user-facing fastest-first construct over real processes.
//
// The programmer-visible equivalent of the paper's ALTBEGIN block:
//
//   auto r = altx::posix::race<int>({
//       [] { return method1(); },   // each returns std::optional<T>:
//       [] { return method2(); },   //   a value    = ENSURE guard held
//       [] { return method3(); },   //   nullopt    = guard failed
//   });
//   if (!r) ...                     //   FAIL — no method succeeded
//
// Every alternative runs in its own forked process (full COW isolation: heap,
// globals, everything); the first to produce a value wins, its result is
// returned in the parent and its siblings are eliminated. Side effects of the
// losers never escape their processes. An exception inside an alternative
// counts as a failed guard.
#pragma once

#include <time.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bytes.hpp"
#include "obs/history.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posix/alt_group.hpp"
#include "posix/governor.hpp"
#include "posix/predictor.hpp"

namespace altx::posix {

/// Serialisation across the commit pipe: trivially copyable types, plus
/// std::string and Bytes.
template <typename T>
concept RaceSerializable =
    std::is_trivially_copyable_v<T> || std::is_same_v<T, std::string> ||
    std::is_same_v<T, Bytes>;

template <RaceSerializable T>
Bytes race_encode(const T& value) {
  if constexpr (std::is_same_v<T, Bytes>) {
    return value;
  } else if constexpr (std::is_same_v<T, std::string>) {
    return Bytes(value.begin(), value.end());
  } else {
    Bytes b(sizeof(T));
    std::memcpy(b.data(), &value, sizeof(T));
    return b;
  }
}

template <RaceSerializable T>
T race_decode(const Bytes& b) {
  if constexpr (std::is_same_v<T, Bytes>) {
    return b;
  } else if constexpr (std::is_same_v<T, std::string>) {
    return std::string(b.begin(), b.end());
  } else {
    ALTX_REQUIRE(b.size() == sizeof(T), "race_decode: size mismatch");
    T value;
    std::memcpy(&value, b.data(), sizeof(T));
    return value;
  }
}

/// How a race without a winner ended, plus the per-fate census — what a
/// retry policy needs to decide whether another attempt can possibly help.
/// With Eliminate::kAsynchronous some losers may still be unreaped
/// (kRunning) when this is filled.
struct RaceReport {
  WaitVerdict verdict = WaitVerdict::kUndecided;

  /// The trace id grouping this block's events (0 when tracing is off).
  /// Lets an embedding emit extra spans — altxd's queue-wait phase — into
  /// the same race timeline after the fact.
  std::uint32_t race_id = 0;

  int committed = 0;
  int aborted = 0;
  int too_late = 0;
  int crashed = 0;
  int hung = 0;
  int eliminated = 0;
  int over_budget = 0;  // killed by the governor's watchdog
  int predicted_losers = 0;  // killed by the predictor's early-kill rule

  /// What the plan decided (zero when prediction was off or the plan was
  /// inactive): arms deferred behind the leader, arms skipped outright.
  int pred_hedged = 0;
  int pred_skipped = 0;

  /// What the speculation cost: every child's CPU from wait4 at reap time,
  /// the losers' discarded COW pages, and the total/winner overhead ratio.
  SpeculationReport spec;
};

struct RaceOptions {
  std::chrono::milliseconds timeout{10'000};
  Eliminate elimination = Eliminate::kSynchronous;
  AltHeap* heap = nullptr;  // shared-state arena absorbed from the winner

  /// Replication for reliability (paper section 6: "transparent replication
  /// can easily be combined with the use of parallel execution of several
  /// alternatives"): each alternative is spawned this many times; any replica
  /// may win for its alternative, so a crashing replica does not lose the
  /// alternative.
  int replicas = 1;

  /// Optional seeded fault plan, consulted by children at their sync points
  /// and by the parent before each fork (see posix/fault.hpp).
  FaultInjector* fault = nullptr;

  /// When set, filled with the verdict and child-fate census after the wait.
  RaceReport* report = nullptr;

  /// Resource governor (admission, per-arm budgets, child rlimits). nullptr
  /// resolves to the env-configured SpeculationGovernor::global(); see
  /// AltGroupOptions::governor.
  SpeculationGovernor* governor = nullptr;

  /// SIGTERM → SIGKILL elimination grace; negative resolves from
  /// ALTX_KILL_GRACE_MS (see AltGroupOptions::kill_grace).
  std::chrono::milliseconds kill_grace{-1};

  /// Stable identity of this alternative block for the per-arm history
  /// store (obs/history.hpp): pass ALTX_SITE() (a file:line hash) or any
  /// nonzero id that is the same every run. When set and a history store is
  /// active, every reaped child's wall/CPU/success is folded into the
  /// (site_id, arm) entry. 0 = no history.
  std::uint64_t site_id = 0;

  /// Overrides the arm index recorded into the history store — used by
  /// serialized_race, where a degraded block runs each alternative as its
  /// own single-arm race but the history must still attribute the sample to
  /// the original arm. 0 = derive from the child index.
  std::uint32_t history_arm = 0;

  /// When non-empty, names an altxd Unix socket: server::race() (see
  /// src/server/client.hpp) ships the block to that daemon instead of
  /// forking locally, so a call site redirects by filling this field and
  /// naming its alternatives. posix::race() itself ignores the field — the
  /// redirect lives in the client library, which keeps altx_posix free of a
  /// dependency on the server.
  std::string daemon_socket;

  /// Prediction-driven speculation budgeting (posix/predictor.hpp). Off by
  /// default; `predict = true` plans this race with the env-tuned
  /// (ALTX_PRED_*) config over the current history store, and ALTX_PRED=1
  /// turns planning on process-wide without touching call sites. Either
  /// way a race only plans when site_id is set — the planner has nothing
  /// to read otherwise — and a cold store yields the predict-off plan.
  bool predict = false;

  /// Overrides the planner (tests, the checker's synthetic histories).
  /// Implies planning for this race; must outlive the call.
  const SpeculationPlanner* planner = nullptr;
};

template <typename T>
struct RaceResult {
  T value{};
  int winner = 0;  // 1-based index of the selected alternative
  std::size_t pages_absorbed = 0;
};

/// An alternative is any callable returning std::optional<T>; nullopt (or an
/// escaped exception) means its guard failed.
template <RaceSerializable T>
using AlternativeFn = std::function<std::optional<T>()>;

/// Concurrently executes mutually exclusive alternatives, fastest first.
/// Returns nullopt when all alternatives fail or the timeout expires.
template <RaceSerializable T>
std::optional<RaceResult<T>> race(const std::vector<AlternativeFn<T>>& alts,
                                  const RaceOptions& options = {}) {
  ALTX_REQUIRE(!alts.empty(), "race: need at least one alternative");
  ALTX_REQUIRE(options.replicas >= 1, "race: need at least one replica");
  const int n = static_cast<int>(alts.size());

  // Prediction-driven planning. The plan is computed before the forks so
  // its per-arm kill deadlines ride into the watchdog registration; an
  // inactive plan (cold store, predict off, no site) changes nothing below.
  std::optional<SpeculationPlanner> local_planner;
  const SpeculationPlanner* planner = options.planner;
  if (planner == nullptr) {
    if (options.predict) {
      PredictorConfig pc = PredictorConfig::from_env();
      pc.enabled = true;
      local_planner.emplace(pc, obs::history());
      planner = &*local_planner;
    } else if (SpeculationPlanner::env_enabled()) {
      planner = SpeculationPlanner::global();
    }
  }
  SpeculationPlan plan;
  if (planner != nullptr && options.site_id != 0) {
    SpeculationGovernor* gov = options.governor != nullptr
                                   ? options.governor
                                   : SpeculationGovernor::global();
    plan = planner->plan(options.site_id, n, governor_under_pressure(gov));
  }

  AltGroupOptions go;
  go.elimination = options.elimination;
  go.heap = options.heap;
  go.fault = options.fault;
  go.governor = options.governor;
  go.kill_grace = options.kill_grace;
  if (plan.active) {
    go.pred_kill_ns.resize(
        static_cast<std::size_t>(n) *
        static_cast<std::size_t>(options.replicas));
    for (std::size_t j = 0; j < go.pred_kill_ns.size(); ++j) {
      go.pred_kill_ns[j] =
          plan.arms[j % static_cast<std::size_t>(n)].kill_after_ns;
    }
  }
  AltGroup group(go);
  const int who = group.alt_spawn(n * options.replicas);
  if (who > 0) {
    // Child: replicas of alternative a get indices a, a+n, a+2n, ... The
    // child runs the method, then synchronizes (or aborts); it must never
    // return into the caller's world.
    const std::size_t alt_index = static_cast<std::size_t>((who - 1) % n);
    const ArmPlan* ap = plan.active ? &plan.arms[alt_index] : nullptr;
    try {
      if (ap != nullptr && ap->decision == ArmDecision::kSkip) {
        // The plan declined this arm under pressure: its guard is
        // short-circuited to FAIL without the method ever running.
        group.child_abort();
      }
      if (ap != nullptr && ap->decision == ArmDecision::kHedge &&
          ap->stage_after_ns > 0) {
        // Deferred arm (the hedged.hpp stagger discipline): sleep out the
        // leader's predicted quantile. A leader that commits first
        // eliminates this child while it is still asleep — nearly free; a
        // leader that overruns finds its backup already warming up.
        const std::uint64_t us = ap->stage_after_ns / 1000;
        timespec ts{static_cast<time_t>(us / 1'000'000),
                    static_cast<long>(us % 1'000'000 * 1000)};
        ::nanosleep(&ts, nullptr);
        obs::emit(obs::EventKind::kPredStage, group.race_id(),
                  static_cast<std::int16_t>(who), ap->stage_after_ns,
                  ap->predicted_wall_ns);
      }
      const std::optional<T> out = alts[alt_index]();
      if (out.has_value()) group.child_commit(race_encode<T>(*out));
      group.child_abort();
    } catch (...) {
      group.child_abort();
    }
  }
  // Parent side from here (the child paths above never return). One
  // kPredPlan per planned race, active or not, so the trace can tell
  // "predicted, cold store" from "prediction off".
  if (planner != nullptr && options.site_id != 0) {
    obs::emit(obs::EventKind::kPredPlan, group.race_id(), 0,
              static_cast<std::uint64_t>(plan.launched),
              static_cast<std::uint64_t>(plan.hedged),
              static_cast<std::uint64_t>(plan.skipped));
    if (obs::enabled()) {
      auto& m = obs::MetricsRegistry::global();
      m.counter("pred_plans").add();
      if (plan.hedged > 0) {
        m.counter("pred_hedged").add(static_cast<std::uint64_t>(plan.hedged));
      }
      if (plan.skipped > 0) {
        m.counter("pred_skipped")
            .add(static_cast<std::uint64_t>(plan.skipped));
      }
    }
  }
  auto win = group.alt_wait(options.timeout);
  if (options.site_id != 0) {
    if (obs::HistoryStore* h = obs::history(); h != nullptr) {
      // One sample per reaped arm: wall from the parent's spawn/reap
      // clamps, CPU from the wait4 bill, success = it committed. Replicas
      // fold into their alternative's entry.
      const auto& sts = group.child_statuses();
      for (std::size_t i = 0; i < sts.size(); ++i) {
        const ChildStatus& st = sts[i];
        if (st.fate == ChildFate::kRunning) continue;  // async, unreaped
        if (plan.active) {
          const ArmPlan& ap = plan.arms[i % static_cast<std::size_t>(n)];
          // A skipped arm never ran its method, and a hedged arm that lost
          // spent its wall mostly in the deferral sleep: folding either
          // sample into the history would teach the store that a slow arm
          // is fast — a self-fulfilling prophecy that unravels the plan.
          // Hedged arms still record when they commit (a real observation,
          // and the success the planner needs to see).
          if (ap.decision == ArmDecision::kSkip) continue;
          if (ap.decision == ArmDecision::kHedge &&
              st.fate != ChildFate::kCommitted) {
            continue;
          }
        }
        const std::uint32_t arm =
            options.history_arm != 0
                ? options.history_arm
                : static_cast<std::uint32_t>(i % static_cast<std::size_t>(n)) +
                      1;
        const std::uint64_t wall =
            st.reap_ns > st.spawn_ns ? st.reap_ns - st.spawn_ns : 0;
        h->record(options.site_id, arm, wall, st.usage.cpu_ns,
                  st.fate == ChildFate::kCommitted);
      }
    }
  }
  if (options.report != nullptr) {
    RaceReport& rep = *options.report;
    rep.verdict = group.verdict();
    rep.race_id = group.race_id();
    rep.committed = group.count_fate(ChildFate::kCommitted);
    rep.aborted = group.count_fate(ChildFate::kAborted);
    rep.too_late = group.count_fate(ChildFate::kTooLate);
    rep.crashed = group.count_fate(ChildFate::kCrashed);
    rep.hung = group.count_fate(ChildFate::kHung);
    rep.eliminated = group.count_fate(ChildFate::kEliminated);
    rep.over_budget = group.count_fate(ChildFate::kOverBudget);
    rep.predicted_losers = group.count_fate(ChildFate::kPredictedLoser);
    rep.pred_hedged = plan.hedged;
    rep.pred_skipped = plan.skipped;
    rep.spec = group.speculation_report();
  }
  if (!win.has_value()) return std::nullopt;
  RaceResult<T> r;
  r.value = race_decode<T>(win->result);
  r.winner = (win->index - 1) % n + 1;
  r.pages_absorbed = win->pages_absorbed;
  return r;
}

}  // namespace altx::posix
