// Hedged execution: staggered replicas of ONE method.
//
// The paper's fastest-first selection, applied to a single alternative whose
// latency is unpredictable (its section 4.2 case 3: "tau may vary due to the
// execution environment"). Instead of racing different algorithms, race
// staggered copies of the same one: launch the primary; if it has not
// finished within `stagger`, launch another copy; the first to finish wins
// and the rest are eliminated. Decades later this reappeared as the "hedged
// request" defence against tail latency; it is exactly an alternative block
// whose alternates are replicas with delayed starts.
#pragma once

#include <unistd.h>

#include <chrono>

#include "obs/trace.hpp"
#include "posix/race.hpp"

namespace altx::posix {

struct HedgeOptions {
  int max_copies = 2;  // primary + hedges
  std::chrono::milliseconds stagger{20};  // delay before each extra copy
  std::chrono::milliseconds timeout{30'000};

  /// Resource governor: hedge copies are speculative children like any
  /// other and draw from the same admission pool. nullptr resolves to
  /// SpeculationGovernor::global().
  SpeculationGovernor* governor = nullptr;

  /// History + prediction passthrough: with a site_id the underlying race
  /// records each copy's wall/success, and with predict (or ALTX_PRED=1)
  /// the planner's early-kill deadlines apply to the copies — a copy that
  /// overruns its own historical kill quantile is reaped early, while the
  /// stagger schedule itself stays the caller's.
  std::uint64_t site_id = 0;
  bool predict = false;
};

template <RaceSerializable T>
struct HedgeResult {
  T value{};
  int copies_launched = 0;  // how many replicas actually started work
  bool hedge_won = false;   // a non-primary copy produced the result
};

/// A hedged task receives its copy index (0 = primary) so hedges can target
/// a different replica, server, or strategy variant.
template <typename T>
using HedgedFn = std::function<std::optional<T>(int copy)>;

/// Runs `task` with hedging. Copy k sleeps k*stagger before starting, so
/// later copies only matter when earlier ones are slow. Returns nullopt on
/// total failure or timeout.
template <RaceSerializable T>
std::optional<HedgeResult<T>> hedged(const HedgedFn<T>& task,
                                     const HedgeOptions& options = {}) {
  ALTX_REQUIRE(options.max_copies >= 1, "hedged: need at least one copy");
  std::vector<AlternativeFn<T>> alts;
  for (int k = 0; k < options.max_copies; ++k) {
    const auto delay = options.stagger * k;
    alts.push_back([&task, delay, k]() -> std::optional<T> {
      if (delay.count() > 0) {
        ::usleep(static_cast<useconds_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(delay).count()));
      }
      // Each copy is an attempt at the same task; stamp its ordinal the way
      // supervisor.hpp does, so the timeline attributes this child's events
      // to hedge copy k rather than to whatever attempt it inherited through
      // fork. We are in the forked child: the parent's scope is untouched.
      obs::set_attempt(static_cast<std::uint32_t>(k));
      // When this copy *actually* started mattering — the stagger sleep is
      // the whole point of hedging, so the trace separates wake from fork.
      obs::emit(obs::EventKind::kHedgeWake, obs::current_race(),
                static_cast<std::int16_t>(k + 1),
                static_cast<std::uint64_t>(k));
      return task(k);
    });
  }
  RaceOptions ro;
  ro.timeout = options.timeout;
  ro.governor = options.governor;
  ro.site_id = options.site_id;
  ro.predict = options.predict;
  const auto r = race<T>(alts, ro);
  if (!r.has_value()) return std::nullopt;
  HedgeResult<T> out;
  out.value = r->value;
  out.copies_launched = options.max_copies;  // all forked; later ones may
                                             // have died while still asleep
  out.hedge_won = r->winner > 1;
  return out;
}

}  // namespace altx::posix
