// supervised_race: race<T> wrapped in a retry/backoff/fallback policy.
//
// race<T> gives the paper's semantics on a cooperative machine; this layer
// gives them on a hostile one. A child that segfaults, hangs past the
// deadline, or loses its commit between token and result is not a failed
// guard — it is an environmental casualty, and (unlike a definitive FAIL,
// where every guard evaluated and said no) another attempt may well win.
// The supervisor:
//
//   1. runs race<T> with a per-attempt deadline from the policy's schedule;
//   2. classifies a miss using AltGroup's verdict + fate census:
//        - a winner                         -> return it;
//        - all guards failed, nobody died   -> definitive FAIL, no retry;
//        - crashes / hangs / lost commits /
//          fork() failure                   -> backoff (exponential, with
//                                              deterministic jitter) & retry;
//   3. when attempts are exhausted — or spawning was impossible every time —
//      degrades gracefully: the alternatives run *sequentially, in-process*
//      (the paper's original sequential semantics), and the result is
//      flagged `degraded`. Sequential mode trades the fork isolation away:
//      side effects of a failed guard are no longer contained, and the fault
//      injector (which lives at the child sync points) is not consulted.
//
// Governance: when a SpeculationGovernor denies admission (the process-wide
// token budget is exhausted and the bounded wait expired), the block does
// not fail and does not burn retries — it degrades to *serialized*
// execution: the alternatives run one at a time, each still as its own
// single-arm forked race, so the paper's §3.4 source/sink discipline (loser
// side effects never escape) survives degradation, unlike the in-process
// fallback. Serialized single-arm spawns can always make progress — a
// single-token admission waits and then overdrafts, by design.
//
// Every retry decision and every jittered backoff is deterministic from
// RetryPolicy::seed and the injected fault plan, so a supervised fault
// matrix replays byte-identically.
#pragma once

#include <thread>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posix/governor.hpp"
#include "posix/race.hpp"

namespace altx::posix {

struct RetryPolicy {
  int max_attempts = 3;

  /// Backoff before retry k (1-based) is
  ///   min(max_backoff, initial_backoff * multiplier^(k-1))
  /// scaled by a uniform factor in [1-jitter, 1+jitter].
  std::chrono::milliseconds initial_backoff{5};
  double multiplier = 2.0;
  double jitter = 0.25;
  std::chrono::milliseconds max_backoff{500};

  /// Per-attempt deadline schedule: attempt k (0-based) gets
  ///   min(max_timeout, base_timeout * timeout_growth^k)
  /// — growing deadlines stop a tight schedule from starving slow-but-live
  /// alternatives on every attempt.
  std::chrono::milliseconds base_timeout{10'000};
  double timeout_growth = 1.0;
  std::chrono::milliseconds max_timeout{60'000};

  std::uint64_t seed = 0;  // jitter determinism

  /// Run the alternatives sequentially in-process when every attempt fails
  /// for environmental reasons. Disable to surface the failure instead.
  bool sequential_fallback = true;

  /// Degrade to serialized (one-arm-at-a-time, still fork-isolated)
  /// execution when the governor denies admission. Disable to treat a
  /// denial like a spawn failure instead: back off and retry concurrently.
  bool governor_degrade = true;

  [[nodiscard]] std::chrono::milliseconds attempt_timeout(int attempt) const {
    double t = static_cast<double>(base_timeout.count());
    for (int k = 0; k < attempt; ++k) t *= timeout_growth;
    t = std::min(t, static_cast<double>(max_timeout.count()));
    return std::chrono::milliseconds(static_cast<long long>(t));
  }
};

enum class AttemptOutcome : std::uint8_t {
  kWon,          // race returned a winner
  kAllFailed,    // definitive FAIL: every guard evaluated and failed
  kDisrupted,    // crashes / hangs / lost commits and no winner
  kTimeout,      // deadline passed with live children
  kSpawnFailed,  // fork() failed (genuinely or by injection)
  kAdmissionDenied,  // the governor refused the cohort its tokens
};

inline const char* to_string(AttemptOutcome o) {
  switch (o) {
    case AttemptOutcome::kWon: return "won";
    case AttemptOutcome::kAllFailed: return "all_failed";
    case AttemptOutcome::kDisrupted: return "disrupted";
    case AttemptOutcome::kTimeout: return "timeout";
    case AttemptOutcome::kSpawnFailed: return "spawn_failed";
    case AttemptOutcome::kAdmissionDenied: return "admission_denied";
  }
  return "?";
}

struct AttemptReport {
  AttemptOutcome outcome = AttemptOutcome::kAllFailed;
  RaceReport race;  // verdict + fate census (empty for kSpawnFailed)
  std::chrono::milliseconds backoff_before{0};  // slept before this attempt
};

/// Filled (when supplied) whether or not the supervised race succeeds.
struct SupervisionLog {
  std::vector<AttemptReport> attempts;
  bool fell_back_sequential = false;
  bool degraded_serialized = false;  // governor denial → serialized arms
};

/// The alternatives one at a time, in PI order, each as its own single-arm
/// forked race — full loser isolation at sequential concurrency. This is
/// what a governor-degraded block runs; it is also useful on its own as the
/// minimum-footprint execution mode. Returns the first arm that commits.
/// Throws SystemError if an arm cannot be spawned at all.
template <RaceSerializable T>
std::optional<RaceResult<T>> serialized_race(
    const std::vector<AlternativeFn<T>>& alts, const RaceOptions& options = {}) {
  ALTX_REQUIRE(!alts.empty(), "serialized_race: need at least one alternative");
  for (std::size_t i = 0; i < alts.size(); ++i) {
    RaceOptions one = options;
    one.replicas = 1;
    one.report = nullptr;
    // The degraded single-arm race still feeds the history store under the
    // original arm's index, not "arm 1 of 1" — predictions must not mix
    // alternatives just because the block ran serialized.
    one.history_arm = static_cast<std::uint32_t>(i) + 1;
    std::optional<RaceResult<T>> r =
        race<T>(std::vector<AlternativeFn<T>>{alts[i]}, one);
    if (r.has_value()) {
      r->winner = static_cast<int>(i) + 1;
      return r;
    }
  }
  return std::nullopt;
}

template <typename T>
struct SupervisedResult {
  T value{};
  int winner = 0;        // 1-based alternative index
  int attempts = 1;      // attempts consumed, including the deciding one
  bool degraded = false; // produced by the in-process sequential fallback
  std::size_t pages_absorbed = 0;
};

/// Concurrent alternatives with supervision. Returns nullopt only when the
/// block definitively fails: every guard failed, or every recovery avenue
/// (retries, then the sequential fallback) was exhausted without a value.
template <RaceSerializable T>
std::optional<SupervisedResult<T>> supervised_race(
    const std::vector<AlternativeFn<T>>& alts, const RetryPolicy& policy = {},
    RaceOptions options = {}, SupervisionLog* log = nullptr) {
  ALTX_REQUIRE(policy.max_attempts >= 1,
               "supervised_race: need at least one attempt");
  ALTX_REQUIRE(policy.jitter >= 0.0 && policy.jitter <= 1.0,
               "supervised_race: jitter must be in [0, 1]");
  Rng backoff_rng(policy.seed ^ 0xa5a5a5a55a5a5a5aULL);
  if (log != nullptr) *log = SupervisionLog{};

  // Supervisor-level span events get their own trace id; the races spawned
  // by each attempt take fresh ids of their own, linked back through the
  // attempt ordinal stamped into every record (obs::set_attempt).
  const std::uint32_t span_id = obs::next_race_id();
  struct AttemptScope {  // restore on every exit path, including throws
    ~AttemptScope() { obs::set_attempt(0); }
  } attempt_scope;

  auto sequential = [&]() -> std::optional<SupervisedResult<T>> {
    if (log != nullptr) log->fell_back_sequential = true;
    obs::emit(obs::EventKind::kSequentialFallback, span_id, 0,
              static_cast<std::uint64_t>(alts.size()));
    if (obs::enabled()) {
      obs::MetricsRegistry::global().counter("supervisor_fallbacks").add();
    }
    for (std::size_t i = 0; i < alts.size(); ++i) {
      try {
        const std::optional<T> out = alts[i]();
        if (out.has_value()) {
          SupervisedResult<T> r;
          r.value = *out;
          r.winner = static_cast<int>(i) + 1;
          r.attempts = policy.max_attempts;
          r.degraded = true;
          return r;
        }
      } catch (...) {
        // A throwing guard is a failed guard, as in race().
      }
    }
    return std::nullopt;
  };

  std::chrono::milliseconds pending_backoff{0};
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (pending_backoff.count() > 0) {
      obs::emit(obs::EventKind::kBackoff, span_id, 0,
                static_cast<std::uint64_t>(attempt),
                static_cast<std::uint64_t>(pending_backoff.count()));
      std::this_thread::sleep_for(pending_backoff);
    }

    RaceReport report;
    options.timeout = policy.attempt_timeout(attempt);
    options.report = &report;
    obs::set_attempt(static_cast<std::uint32_t>(attempt));
    obs::emit(obs::EventKind::kAttemptBegin, span_id, 0,
              static_cast<std::uint64_t>(attempt),
              static_cast<std::uint64_t>(options.timeout.count()));
    if (obs::enabled() && attempt > 0) {
      obs::MetricsRegistry::global().counter("supervisor_retries").add();
    }

    AttemptReport ar;
    ar.backoff_before = pending_backoff;
    std::optional<RaceResult<T>> r;
    bool spawn_failed = false;
    bool admission_denied = false;
    try {
      r = race<T>(alts, options);
    } catch (const AdmissionTimeout&) {
      // Before SystemError: AdmissionTimeout derives from it. The governor
      // refused the cohort — the process is over its speculation budget.
      admission_denied = true;
    } catch (const SystemError&) {
      // fork() (or a pipe) failed — resource exhaustion is exactly the
      // transient condition backoff exists for.
      spawn_failed = true;
    }
    ar.race = report;

    if (admission_denied && policy.governor_degrade) {
      ar.outcome = AttemptOutcome::kAdmissionDenied;
      obs::emit(obs::EventKind::kAttemptEnd, span_id, 0,
                static_cast<std::uint64_t>(attempt),
                static_cast<std::uint64_t>(ar.outcome));
      if (log != nullptr) {
        log->attempts.push_back(ar);
        log->degraded_serialized = true;
      }
      obs::emit(obs::EventKind::kGovDegrade, span_id, 0,
                static_cast<std::uint64_t>(alts.size()));
      SpeculationGovernor* gov = options.governor != nullptr
                                     ? options.governor
                                     : SpeculationGovernor::global();
      if (gov != nullptr) gov->note_degraded();
      try {
        auto sr = serialized_race<T>(alts, options);
        if (!sr.has_value()) return std::nullopt;  // every guard said no
        SupervisedResult<T> out;
        out.value = std::move(sr->value);
        out.winner = sr->winner;
        out.attempts = attempt + 1;
        out.degraded = true;
        out.pages_absorbed = sr->pages_absorbed;
        return out;
      } catch (const SystemError&) {
        // Not even one arm at a time could spawn; the in-process fallback
        // is the only isolation level left.
        return policy.sequential_fallback ? sequential() : std::nullopt;
      }
    }

    if (r.has_value()) {
      ar.outcome = AttemptOutcome::kWon;
      obs::emit(obs::EventKind::kAttemptEnd, span_id, 0,
                static_cast<std::uint64_t>(attempt),
                static_cast<std::uint64_t>(ar.outcome));
      if (log != nullptr) log->attempts.push_back(ar);
      SupervisedResult<T> out;
      out.value = std::move(r->value);
      out.winner = r->winner;
      out.attempts = attempt + 1;
      out.pages_absorbed = r->pages_absorbed;
      return out;
    }

    const bool clean_fail = !spawn_failed && !admission_denied &&
                            report.verdict == WaitVerdict::kAllFailed &&
                            report.crashed == 0 && report.hung == 0 &&
                            report.over_budget == 0;
    if (admission_denied) {
      ar.outcome = AttemptOutcome::kAdmissionDenied;  // degrade disabled:
                                                      // back off and retry
    } else if (spawn_failed) {
      ar.outcome = AttemptOutcome::kSpawnFailed;
    } else if (clean_fail) {
      ar.outcome = AttemptOutcome::kAllFailed;
    } else if (report.verdict == WaitVerdict::kTimeout) {
      ar.outcome = AttemptOutcome::kTimeout;
    } else {
      ar.outcome = AttemptOutcome::kDisrupted;
    }
    obs::emit(obs::EventKind::kAttemptEnd, span_id, 0,
              static_cast<std::uint64_t>(attempt),
              static_cast<std::uint64_t>(ar.outcome));
    if (log != nullptr) log->attempts.push_back(ar);

    if (clean_fail) return std::nullopt;  // FAIL is an answer, not an error

    double backoff = static_cast<double>(policy.initial_backoff.count());
    for (int k = 0; k < attempt; ++k) backoff *= policy.multiplier;
    backoff = std::min(backoff, static_cast<double>(policy.max_backoff.count()));
    backoff *= 1.0 + policy.jitter * (2.0 * backoff_rng.uniform() - 1.0);
    pending_backoff = std::chrono::milliseconds(
        static_cast<long long>(std::max(0.0, backoff)));
  }

  if (!policy.sequential_fallback) return std::nullopt;
  return sequential();
}

}  // namespace altx::posix
