#include "posix/measure.hpp"

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>

#include "common/error.hpp"

namespace altx::posix {

namespace {

struct Arena {
  void* base = nullptr;
  std::size_t bytes = 0;

  Arena(std::size_t n, int flags) : bytes(n) {
    base = ::mmap(nullptr, n, PROT_READ | PROT_WRITE,
                  flags | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) throw_errno("mmap");
  }
  ~Arena() {
    if (base != nullptr) ::munmap(base, bytes);
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
};

void touch_every_page(void* base, std::size_t bytes, std::size_t page) {
  auto* p = static_cast<volatile std::uint8_t*>(base);
  for (std::size_t off = 0; off < bytes; off += page) p[off] = 1;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace

ForkMeasurement measure_fork(std::size_t arena_bytes, int iterations) {
  ALTX_REQUIRE(iterations >= 1, "measure_fork: need iterations");
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  Arena arena(arena_bytes, MAP_PRIVATE);
  touch_every_page(arena.base, arena.bytes, page);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw_errno("fork");
    if (pid == 0) _exit(0);  // no memory updates
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  ForkMeasurement m;
  m.arena_bytes = arena_bytes;
  m.iterations = iterations;
  m.mean_ms = ms_since(t0) / iterations;
  return m;
}

CopyMeasurement measure_page_copy(std::size_t arena_bytes,
                                  double fraction_written, int iterations) {
  ALTX_REQUIRE(iterations >= 1, "measure_page_copy: need iterations");
  ALTX_REQUIRE(fraction_written >= 0.0 && fraction_written <= 1.0,
               "measure_page_copy: fraction out of range");
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t pages = arena_bytes / page;
  const auto to_write = static_cast<std::size_t>(
      static_cast<double>(pages) * fraction_written);

  // COW arena shared with children by fork; a tiny MAP_SHARED slot carries
  // the child's timing back.
  Arena arena(arena_bytes, MAP_PRIVATE);
  touch_every_page(arena.base, arena.bytes, page);
  Arena slot(page, MAP_SHARED);
  auto* child_ms = static_cast<double*>(slot.base);

  double total_ms = 0;
  for (int i = 0; i < iterations; ++i) {
    *child_ms = -1;
    const pid_t pid = ::fork();
    if (pid < 0) throw_errno("fork");
    if (pid == 0) {
      auto* p = static_cast<volatile std::uint8_t*>(arena.base);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t k = 0; k < to_write; ++k) {
        p[k * page] = 2;  // first write to the page: COW fault + copy
      }
      *child_ms = ms_since(t0);
      _exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    ALTX_REQUIRE(*child_ms >= 0, "measure_page_copy: child failed");
    total_ms += *child_ms;
  }

  CopyMeasurement m;
  m.arena_bytes = arena_bytes;
  m.fraction_written = fraction_written;
  m.pages_copied = to_write;
  m.child_write_ms = total_ms / iterations;
  m.pages_per_second = m.child_write_ms > 0
                           ? static_cast<double>(to_write) * 1000.0 / m.child_write_ms
                           : 0.0;
  return m;
}

}  // namespace altx::posix
