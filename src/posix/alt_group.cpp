#include "posix/alt_group.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>

namespace altx::posix {

namespace {

constexpr int kExitAbort = 42;    // guard failed, no synchronization
constexpr int kExitTooLate = 43;  // lost the race for the commit token

}  // namespace

AltGroup::AltGroup(AltGroupOptions options) : opts_(options) {}

AltGroup::~AltGroup() {
  if (my_index_ != 0) return;  // children never own the group
  try {
    kill_survivors();
    reap_all();
  } catch (...) {
    // Destructors must not throw; losing a reap here only leaks a zombie
    // until process exit.
  }
}

int AltGroup::alt_spawn(int n) {
  ALTX_REQUIRE(!spawned_, "AltGroup: alt_spawn called twice");
  ALTX_REQUIRE(n >= 1, "AltGroup: need at least one alternative");
  spawned_ = true;

  token_ = Pipe::create(/*nonblocking_read=*/true);
  result_ = Pipe::create();
  // Deposit the single commit token: the 0-1 semaphore of section 3.2.1.
  const std::uint8_t token = 1;
  write_all(token_.write_end.get(), &token, 1);

  children_.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Spawn failure: kill what we already have and report.
      kill_survivors();
      reap_all();
      throw_errno("fork");
    }
    if (pid == 0) {
      // Child: a COW copy of everything the parent had.
      my_index_ = i;
      children_.clear();
      if (opts_.heap != nullptr) opts_.heap->begin_tracking();
      return i;
    }
    children_.push_back(pid);
  }
  reaped_.assign(children_.size(), false);
  return 0;
}

void AltGroup::child_commit(const Bytes& result) {
  ALTX_REQUIRE(my_index_ != 0, "child_commit called in the parent");
  // Try to take the token. First reader commits; everyone else is too late.
  std::uint8_t token = 0;
  const ssize_t got = ::read(token_.read_end.get(), &token, 1);
  if (got != 1) _exit(kExitTooLate);

  Bytes frame;
  ByteWriter w(frame);
  w.u32(static_cast<std::uint32_t>(my_index_));
  w.blob(result.data(), result.size());
  if (opts_.heap != nullptr) {
    w.u8(1);
    const Bytes patch = opts_.heap->serialize_dirty();
    w.blob(patch.data(), patch.size());
  } else {
    w.u8(0);
  }
  write_frame(result_.write_end.get(), frame);
  _exit(0);
}

void AltGroup::child_abort() {
  ALTX_REQUIRE(my_index_ != 0, "child_abort called in the parent");
  _exit(kExitAbort);
}

std::optional<AltWinner> AltGroup::alt_wait(std::chrono::milliseconds timeout) {
  ALTX_REQUIRE(my_index_ == 0, "alt_wait: only the parent waits");
  ALTX_REQUIRE(spawned_, "alt_wait before alt_spawn");
  if (decided_) return verdict_;

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t exited = 0;
  std::vector<bool> done(children_.size(), false);

  auto try_read_result = [&]() -> bool {
    if (!wait_readable(result_.read_end.get(), 0)) return false;
    const auto frame = read_frame(result_.read_end.get());
    if (!frame.has_value()) return false;
    ByteReader r(*frame);
    AltWinner win;
    win.index = static_cast<int>(r.u32());
    win.result = r.blob();
    if (r.u8() == 1) {
      const Bytes patch = r.blob();
      if (opts_.heap != nullptr) {
        win.pages_absorbed = opts_.heap->apply_patch(patch);
      }
    }
    verdict_ = std::move(win);
    return true;
  };

  while (true) {
    if (try_read_result()) break;

    // Reap opportunistically to detect the all-aborted case.
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (done[i]) continue;
      int status = 0;
      const pid_t r = ::waitpid(children_[i], &status, WNOHANG);
      if (r == children_[i]) {
        done[i] = true;
        reaped_[i] = true;
        ++exited;
        if (WIFEXITED(status) && WEXITSTATUS(status) == kExitAbort) ++aborted_;
      }
    }
    if (exited == children_.size()) {
      // Everyone is gone; a commit may still sit in the pipe (the winner
      // exits after writing).
      try_read_result();
      break;
    }

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // TIMEOUT: presume no alternative will succeed (section 3.2). A commit
      // that raced in before the kill is still honoured — it won.
      kill_survivors();
      try_read_result();
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int slice = static_cast<int>(std::min<long long>(20, remaining.count() + 1));
    wait_readable(result_.read_end.get(), std::max(1, slice));
  }

  decided_ = true;
  kill_survivors();
  if (opts_.elimination == Eliminate::kSynchronous) reap_all();
  return verdict_;
}

void AltGroup::finish() { reap_all(); }

void AltGroup::kill_survivors() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!reaped_[i]) ::kill(children_[i], SIGKILL);
  }
}

void AltGroup::reap_all() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    if (::waitpid(children_[i], &status, 0) == children_[i]) {
      reaped_[i] = true;
      if (WIFEXITED(status) && WEXITSTATUS(status) == kExitAbort) ++aborted_;
    }
  }
}

}  // namespace altx::posix
