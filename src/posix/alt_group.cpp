#include "posix/alt_group.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "posix/governor.hpp"

namespace altx::posix {

namespace {

constexpr int kExitAbort = 42;    // guard failed, no synchronization
constexpr int kExitTooLate = 43;  // lost the race for the commit token

// In-place fork() EAGAIN retries: transient pid exhaustion (a sibling
// cohort mid-teardown, a fork storm elsewhere in the tree) usually clears
// in milliseconds, and abandoning the whole cohort to the supervisor's
// much slower backoff for it would be out of proportion.
constexpr int kForkRetries = 3;

}  // namespace

const char* to_string(ChildFate fate) {
  switch (fate) {
    case ChildFate::kRunning: return "running";
    case ChildFate::kCommitted: return "committed";
    case ChildFate::kTooLate: return "too_late";
    case ChildFate::kAborted: return "aborted";
    case ChildFate::kCrashed: return "crashed";
    case ChildFate::kHung: return "hung";
    case ChildFate::kEliminated: return "eliminated";
    case ChildFate::kOverBudget: return "over_budget";
    case ChildFate::kPredictedLoser: return "predicted_loser";
  }
  return "?";
}

const char* to_string(WaitVerdict verdict) {
  switch (verdict) {
    case WaitVerdict::kUndecided: return "undecided";
    case WaitVerdict::kWinner: return "winner";
    case WaitVerdict::kAllFailed: return "all_failed";
    case WaitVerdict::kTimeout: return "timeout";
  }
  return "?";
}

AltGroup::AltGroup(AltGroupOptions options) : opts_(options) {
  if (opts_.governor == nullptr) {
    opts_.governor = SpeculationGovernor::global();
  }
  if (opts_.kill_grace.count() < 0) {
    const char* s = std::getenv("ALTX_KILL_GRACE_MS");
    opts_.kill_grace = std::chrono::milliseconds(
        s != nullptr ? std::strtoll(s, nullptr, 0) : 0);
    if (opts_.kill_grace.count() < 0) opts_.kill_grace = {};
  }
}

AltGroup::~AltGroup() {
  if (my_index_ != 0) return;  // children never own the group
  try {
    kill_survivors();
    reap_all();
    release_remaining_tokens();
    finalize_accounting();
  } catch (...) {
    // Destructors must not throw; losing a reap here only leaks a zombie
    // until process exit.
  }
  if (census_ != nullptr) {
    ::munmap(census_, census_slots_ * sizeof(CensusSlot));
    census_ = nullptr;
  }
}

int AltGroup::alt_spawn(int n) {
  ALTX_REQUIRE(!spawned_, "AltGroup: alt_spawn called twice");
  ALTX_REQUIRE(n >= 1, "AltGroup: need at least one alternative");
  spawned_ = true;
  if (opts_.fault != nullptr) fault_attempt_ = opts_.fault->begin_attempt();
  // The race id exists before admission so the queueing time is part of
  // this race's timeline — admission wait is wall time the caller pays.
  if (obs::enabled()) {
    race_id_ = obs::next_race_id();
    start_ns_ = obs::now_ns();
    obs::emit(obs::EventKind::kRaceBegin, race_id_, 0,
              static_cast<std::uint64_t>(n));
  }
  if (opts_.governor != nullptr) {
    // Admission before any fork: either the whole cohort runs or none of it
    // does. kDenied (n >= 2 after the bounded wait) is the degrade signal —
    // the supervisor catches AdmissionTimeout and serializes the block.
    obs::ScopedPhase admission(obs::Phase::kAdmissionWait, race_id_);
    if (opts_.governor->admit(n) == Admission::kDenied) {
      spawned_ = false;  // nothing happened; the group may be retried
      throw AdmissionTimeout(n);
    }
    tokens_held_ = n;
  }
  obs::ScopedPhase fork_phase(obs::Phase::kFork, race_id_);
  obs::prof_prewarm();  // stack bounds for the children's samplers

  token_ = Pipe::create(/*nonblocking_read=*/true);
  result_ = Pipe::create();
  // Deposit the single commit token: the 0-1 semaphore of section 3.2.1.
  // ALTX_TEST_BREAK_AT_MOST_ONCE is a test-only sabotage knob for the
  // equivalence checker (src/check/): it deposits a second token, so two
  // children can both "win" — the at-most-once-commit violation altx-check
  // must catch, shrink, and replay. Never set it outside tests.
  const std::uint8_t token = 1;
  write_all(token_.write_end.get(), &token, 1);
  if (std::getenv("ALTX_TEST_BREAK_AT_MOST_ONCE") != nullptr) {
    write_all(token_.write_end.get(), &token, 1);
  }

  // The census arena: one MAP_SHARED slot per child, created before any
  // fork so every child inherits the same mapping. A child deposits its
  // dirty-page count here just before its sync point; the numbers survive a
  // SIGKILL that the pipe-based result path would lose. On mmap failure the
  // arena is simply absent and accounting degrades to rusage-only.
  census_slots_ = static_cast<std::size_t>(n);
  void* arena = ::mmap(nullptr, census_slots_ * sizeof(CensusSlot),
                       PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
                       -1, 0);
  if (arena == MAP_FAILED) {
    census_ = nullptr;
    census_slots_ = 0;
  } else {
    census_ = static_cast<CensusSlot*>(arena);  // MAP_ANONYMOUS: zeroed
  }

  // Cohort bookkeeping grows in lockstep with the forks so that a mid-loop
  // failure can kill and reap exactly the children that exist.
  children_.reserve(static_cast<std::size_t>(n));
  reaped_.reserve(static_cast<std::size_t>(n));
  killed_.reserve(static_cast<std::size_t>(n));
  status_.reserve(static_cast<std::size_t>(n));

  auto abandon_cohort = [this] {
    kill_survivors();
    reap_all();
    release_remaining_tokens();
  };

  for (int i = 1; i <= n; ++i) {
    const std::uint64_t fork_t0 = obs::enabled() ? obs::now_ns() : 0;
    pid_t pid = -1;
    for (int try_n = 0;; ++try_n) {
      const bool injected =
          opts_.fault != nullptr &&
          opts_.fault->fork_fails(fault_attempt_, i, try_n);
      if (!injected) {
        pid = ::fork();
        if (pid >= 0) break;
      }
      const int err = injected ? EAGAIN : errno;
      // EAGAIN is pid/memory exhaustion and is often transient (a sibling
      // cohort mid-teardown); retry in place, briefly and jittered, before
      // abandoning the cohort to the supervisor's coarser backoff.
      if (err != EAGAIN || try_n >= kForkRetries) {
        abandon_cohort();
        throw SystemError(injected ? "fork (injected fault)" : "fork", err);
      }
      const double u =
          Rng((fault_attempt_ << 32) ^
              (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL) ^
              static_cast<std::uint64_t>(try_n))
              .uniform();
      ::usleep(static_cast<useconds_t>(1'000 + u * 9'000));
      if (obs::enabled()) {
        obs::MetricsRegistry::global().counter("fork_eagain_retries").add();
      }
    }
    if (pid == 0) {
      // Child: a COW copy of everything the parent had. The parent's open
      // fork span is cancelled — only the parent emits its end.
      fork_phase.cancel();
      my_index_ = i;
      children_.clear();
      reaped_.clear();
      killed_.clear();
      status_.clear();
      if (opts_.governor != nullptr) opts_.governor->apply_child_rlimits();
      if (opts_.heap != nullptr) opts_.heap->begin_tracking();
      obs::set_current_race(race_id_);
      obs::prof_arm_child(race_id_, i);
      obs::emit(obs::EventKind::kGuardStart, race_id_,
                static_cast<std::int16_t>(i));
      child_run_t0_ = obs::phase_begin(obs::Phase::kArmRun, race_id_,
                                       static_cast<std::int16_t>(i));
      return i;
    }
    if (opts_.governor != nullptr) {
      const std::size_t j = static_cast<std::size_t>(i) - 1;
      opts_.governor->watch(
          pid, race_id_, i,
          j < opts_.pred_kill_ns.size() ? opts_.pred_kill_ns[j] : 0);
    }
    if (obs::enabled()) {
      const std::uint64_t fork_ns = obs::now_ns() - fork_t0;
      obs::emit(obs::EventKind::kFork, race_id_, static_cast<std::int16_t>(i),
                static_cast<std::uint64_t>(pid), fork_ns);
      obs::MetricsRegistry::global().histogram("fork_latency_ns").record(fork_ns);
    }
    children_.push_back(pid);
    reaped_.push_back(false);
    killed_.push_back(false);
    ChildStatus st;
    st.pid = pid;
    st.spawn_ns = obs::now_ns();
    status_.push_back(st);
  }
  return 0;
}

void AltGroup::child_commit(const Bytes& result) {
  ALTX_REQUIRE(my_index_ != 0, "child_commit called in the parent");
  // The guard held — recorded before the fault sync point, so the trace
  // still explains a child that the injector kills on its way in.
  obs::emit(obs::EventKind::kGuardResult, race_id_,
            static_cast<std::int16_t>(my_index_), 1);
  obs::phase_end(obs::Phase::kArmRun, race_id_,
                 static_cast<std::int16_t>(my_index_), child_run_t0_);
  child_run_t0_ = 0;
  publish_census();  // before the sync point: survives an injected SIGKILL
  bool drop = false;
  if (opts_.fault != nullptr) {
    // May crash / hang / stall right here — the instant before
    // synchronization, the worst place a real fault can strike.
    drop = opts_.fault->at_sync_point(fault_attempt_, my_index_) ==
           FaultKind::kDropCommit;
  }
  // Try to take the token. First reader commits; everyone else is too late.
  obs::emit(obs::EventKind::kCommitAttempt, race_id_,
            static_cast<std::int16_t>(my_index_));
  std::uint8_t token = 0;
  const ssize_t got = ::read(token_.read_end.get(), &token, 1);
  if (got != 1) {
    obs::emit(obs::EventKind::kTooLate, race_id_,
              static_cast<std::int16_t>(my_index_));
    _exit(kExitTooLate);
  }
  obs::emit(obs::EventKind::kCommitWon, race_id_,
            static_cast<std::int16_t>(my_index_),
            static_cast<std::uint64_t>(result.size()));
  if (drop) {
    // Injected: the commit is lost between synchronizing and publishing.
    // Nobody else can ever win (the token is gone) — the block must fail
    // and the supervisor must notice. Exits with an unexpected status so
    // the parent classifies this child as crashed.
    _exit(77);
  }

  Bytes frame;
  ByteWriter w(frame);
  w.u32(static_cast<std::uint32_t>(my_index_));
  w.blob(result.data(), result.size());
  if (opts_.heap != nullptr) {
    w.u8(1);
    obs::ScopedPhase diff(obs::Phase::kPageDiff, race_id_,
                          static_cast<std::int16_t>(my_index_));
    const Bytes patch = opts_.heap->serialize_dirty();
    diff.end();
    w.blob(patch.data(), patch.size());
  } else {
    w.u8(0);
  }
  {
    obs::ScopedPhase pipe(obs::Phase::kResultPipe, race_id_,
                          static_cast<std::int16_t>(my_index_));
    write_frame(result_.write_end.get(), frame);
  }
  _exit(0);
}

void AltGroup::child_abort() {
  ALTX_REQUIRE(my_index_ != 0, "child_abort called in the parent");
  obs::emit(obs::EventKind::kGuardResult, race_id_,
            static_cast<std::int16_t>(my_index_), 0);
  obs::phase_end(obs::Phase::kArmRun, race_id_,
                 static_cast<std::int16_t>(my_index_), child_run_t0_);
  child_run_t0_ = 0;
  publish_census();  // before the sync point: survives an injected SIGKILL
  if (opts_.fault != nullptr) {
    // The abort path is a sync point too: a guard that fails can still
    // crash or hang on its way out. kDropCommit degenerates to the abort.
    (void)opts_.fault->at_sync_point(fault_attempt_, my_index_);
  }
  obs::emit(obs::EventKind::kGuardFail, race_id_,
            static_cast<std::int16_t>(my_index_));
  _exit(kExitAbort);
}

std::optional<AltWinner> AltGroup::alt_wait(std::chrono::milliseconds timeout) {
  ALTX_REQUIRE(my_index_ == 0, "alt_wait: only the parent waits");
  ALTX_REQUIRE(spawned_, "alt_wait before alt_spawn");
  if (decided_) return verdict_;

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t exited = 0;

  // The parent's view of the arms racing: from here until the first result
  // byte is readable (or the race is called off). The later phases —
  // result_pipe, absorb, eliminate, decide — each close before the next
  // opens, so the parent-side spans tile the race wall time.
  obs::ScopedPhase arm_phase(obs::Phase::kArmRun, race_id_);

  auto try_read_result = [&]() -> bool {
    if (!wait_readable(result_.read_end.get(), 0)) return false;
    arm_phase.end();
    std::optional<Bytes> frame;
    {
      obs::ScopedPhase pipe(obs::Phase::kResultPipe, race_id_);
      frame = read_frame(result_.read_end.get());
    }
    if (!frame.has_value()) return false;
    ByteReader r(*frame);
    AltWinner win;
    win.index = static_cast<int>(r.u32());
    win.result = r.blob();
    if (r.u8() == 1) {
      const Bytes patch = r.blob();
      if (opts_.heap != nullptr) {
        obs::ScopedPhase absorb(obs::Phase::kAbsorb, race_id_);
        win.pages_absorbed = opts_.heap->apply_patch(patch);
      }
    }
    verdict_ = std::move(win);
    verdict_kind_ = WaitVerdict::kWinner;
    return true;
  };

  while (true) {
    if (try_read_result()) break;

    // Reap opportunistically: detects the all-failed case and classifies
    // self-deaths (a signal we did not send is a genuine crash).
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (reaped_[i]) continue;
      int status = 0;
      struct rusage ru {};
      const pid_t r = wait4_eintr(children_[i], &status, WNOHANG, &ru);
      if (r == children_[i]) {
        record_exit(i, status, decode_rusage(ru));
        ++exited;
      }
    }
    if (exited == children_.size()) {
      // Everyone is gone; a commit may still sit in the pipe (the winner
      // exits after writing).
      if (!try_read_result()) verdict_kind_ = WaitVerdict::kAllFailed;
      break;
    }

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // TIMEOUT: presume no alternative will succeed (section 3.2). A commit
      // that raced in before the kill is still honoured — it won.
      arm_phase.end();
      {
        obs::ScopedPhase elim(obs::Phase::kEliminate, race_id_);
        kill_survivors();
      }
      if (!try_read_result()) verdict_kind_ = WaitVerdict::kTimeout;
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int slice = static_cast<int>(std::min<long long>(20, remaining.count() + 1));
    wait_readable(result_.read_end.get(), std::max(1, slice));
  }

  decided_ = true;
  arm_phase.end();  // idempotent: already closed on the result/timeout paths
  {
    bool survivors = false;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (!reaped_[i]) {
        survivors = true;
        break;
      }
    }
    if (survivors) {
      obs::ScopedPhase elim(obs::Phase::kEliminate, race_id_);
      kill_survivors();
      if (opts_.elimination == Eliminate::kSynchronous) reap_all();
    }
  }
  const std::uint64_t decide_t0 =
      obs::phase_begin(obs::Phase::kDecide, race_id_, 0);
  finalize_accounting();  // no-op while losers are still unreaped
  obs::phase_end(obs::Phase::kDecide, race_id_, 0, decide_t0);
  if (obs::enabled()) {
    obs::emit(obs::EventKind::kRaceDecided, race_id_, 0,
              static_cast<std::uint64_t>(verdict_kind_),
              verdict_.has_value() ? static_cast<std::uint64_t>(verdict_->index)
                                   : 0,
              verdict_.has_value() ? verdict_->pages_absorbed : 0);
    auto& metrics = obs::MetricsRegistry::global();
    if (verdict_.has_value()) {
      metrics.histogram("commit_latency_ns").record(obs::now_ns() - start_ns_);
      metrics.counter("pages_absorbed").add(verdict_->pages_absorbed);
    } else if (verdict_kind_ == WaitVerdict::kTimeout) {
      metrics.counter("race_timeouts").add();
    } else {
      metrics.counter("race_all_failed").add();
    }
  }
  return verdict_;
}

void AltGroup::finish() {
  reap_all();
  release_remaining_tokens();
  finalize_accounting();
}

int AltGroup::count_fate(ChildFate fate) const {
  int n = 0;
  for (const auto& st : status_) {
    if (st.fate == fate) ++n;
  }
  return n;
}

void AltGroup::kill_survivors() {
  if (opts_.kill_grace.count() <= 0) {
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (!reaped_[i]) {
        ::kill(children_[i], SIGKILL);
        killed_[i] = true;
      }
    }
    return;
  }
  // Graceful elimination: SIGTERM first, so a loser with cleanup to do
  // (flush a log, drop a lock file) gets the grace window, then SIGKILL
  // whatever is still standing. Children reaped during the window keep the
  // normal fate pipeline — a SIGTERM death is still "we killed it".
  bool any = false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!reaped_[i]) {
      ::kill(children_[i], SIGTERM);
      killed_[i] = true;
      any = true;
    }
  }
  if (!any) return;
  const auto deadline = std::chrono::steady_clock::now() + opts_.kill_grace;
  while (std::chrono::steady_clock::now() < deadline) {
    bool all_gone = true;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (reaped_[i]) continue;
      int status = 0;
      struct rusage ru {};
      if (wait4_eintr(children_[i], &status, WNOHANG, &ru) == children_[i]) {
        record_exit(i, status, decode_rusage(ru));
      } else {
        all_gone = false;
      }
    }
    if (all_gone) return;
    ::usleep(1'000);
  }
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!reaped_[i]) ::kill(children_[i], SIGKILL);  // grace expired
  }
}

void AltGroup::reap_all() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (reaped_[i]) continue;
    int status = 0;
    struct rusage ru {};
    if (wait4_eintr(children_[i], &status, 0, &ru) == children_[i]) {
      record_exit(i, status, decode_rusage(ru));
    }
  }
}

void AltGroup::release_remaining_tokens() {
  if (opts_.governor == nullptr || tokens_released_ >= tokens_held_) return;
  opts_.governor->release(tokens_held_ - tokens_released_);
  tokens_released_ = tokens_held_;
}

void AltGroup::record_exit(std::size_t i, int status,
                           const ChildUsage& usage) {
  reaped_[i] = true;
  ChildStatus& st = status_[i];
  st.usage = usage;
  st.reap_ns = obs::now_ns();
  std::optional<GovKillReason> gov_kill;
  if (opts_.governor != nullptr) {
    opts_.governor->unwatch(st.pid);
    gov_kill = opts_.governor->consume_kill(st.pid);
    if (tokens_released_ < tokens_held_) {
      // One token back per reaped child: a block winding down frees budget
      // for queued blocks before its own teardown completes.
      opts_.governor->release(1);
      ++tokens_released_;
    }
  }
  const ExitInfo info = decode_wait_status(status);
  if (info.exited) {
    st.exit_code = info.exit_code;
    if (st.exit_code == 0) {
      st.fate = ChildFate::kCommitted;
    } else if (st.exit_code == kExitAbort) {
      st.fate = ChildFate::kAborted;
      ++aborted_;
    } else if (st.exit_code == kExitTooLate) {
      st.fate = ChildFate::kTooLate;
    } else {
      st.fate = ChildFate::kCrashed;  // an exit no protocol path produces
    }
  } else if (info.signaled) {
    st.signal = info.signal;
    if ((killed_[i] || gov_kill.has_value()) && verdict_.has_value() &&
        static_cast<std::size_t>(verdict_->index) == i + 1) {
      // A kill we (or the watchdog) sent caught the winner between writing
      // its result and _exit(0). The answer was already accepted, so this
      // is a commit — classifying it otherwise would bill the winner's CPU
      // and pages as speculation waste.
      st.fate = ChildFate::kCommitted;
    } else if (gov_kill.has_value()) {
      // The governor's watchdog killed it: over budget (wall / CPU), shed
      // under pressure, or past its own historical kill quantile. Distinct
      // from kCrashed so the supervisor and the ledger can tell containment
      // from failure.
      st.fate = *gov_kill == GovKillReason::kPredicted
                    ? ChildFate::kPredictedLoser
                    : ChildFate::kOverBudget;
    } else if (killed_[i]) {
      // We sent the kill. Before a verdict it was a deadline kill (the
      // child was hung past the TIMEOUT); after one, routine elimination.
      // A child that died of its own SIGKILL in the race window between
      // our poll and our kill is indistinguishable — attributed to us.
      st.fate = verdict_.has_value() ? ChildFate::kEliminated
                                     : ChildFate::kHung;
    } else {
      st.fate = ChildFate::kCrashed;
    }
  } else {
    st.fate = ChildFate::kCrashed;
  }
  // Pick up the child's dirty-page census if it published one before dying.
  // The acquire pairs with the child's release store: a torn slot is never
  // read, it just counts as "no census" (zeros).
  if (census_ != nullptr && i < census_slots_ &&
      census_[i].ready.load(std::memory_order_acquire) != 0) {
    st.dirty_pages = census_[i].dirty_pages;
    st.dirty_bytes = census_[i].dirty_bytes;
  }
  if (obs::enabled()) {
    // The terminal fate event: exactly one per reaped child, parent-side,
    // so it exists even when the child died before its first instruction.
    obs::emit(obs::EventKind::kChildFate, race_id_,
              static_cast<std::int16_t>(i + 1),
              static_cast<std::uint64_t>(st.fate),
              static_cast<std::uint64_t>(st.signal),
              static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  st.exit_code)));
    // The kernel's bill for this child, from wait4 — valid even when the
    // child never ran a line of the protocol.
    obs::emit(obs::EventKind::kChildUsage, race_id_,
              static_cast<std::int16_t>(i + 1), usage.cpu_ns, usage.maxrss_kb,
              (usage.minor_faults << 32) |
                  (usage.major_faults & 0xffffffffULL));
    auto& metrics = obs::MetricsRegistry::global();
    metrics.counter(std::string("fate_") + to_string(st.fate)).add();
  }
}

void AltGroup::publish_census() {
  std::uint64_t pages = 0;
  std::uint64_t bytes = 0;
  if (opts_.heap != nullptr) {
    pages = static_cast<std::uint64_t>(opts_.heap->dirty_pages().size());
    bytes = pages * static_cast<std::uint64_t>(opts_.heap->page_size());
  }
  if (census_ != nullptr && my_index_ >= 1 &&
      static_cast<std::size_t>(my_index_) <= census_slots_) {
    CensusSlot& slot = census_[static_cast<std::size_t>(my_index_) - 1];
    slot.dirty_pages = pages;
    slot.dirty_bytes = bytes;
    slot.ready.store(1, std::memory_order_release);
  }
  obs::emit(obs::EventKind::kChildPages, race_id_,
            static_cast<std::int16_t>(my_index_), pages, bytes);
}

SpeculationReport AltGroup::speculation_report() const {
  SpeculationReport rep;
  for (std::size_t i = 0; i < status_.size(); ++i) {
    if (!reaped_[i]) continue;
    const ChildStatus& st = status_[i];
    rep.total_cpu_ns += st.usage.cpu_ns;
    ++rep.children_costed;
    if (st.fate == ChildFate::kCommitted) {
      // The winner's pages were absorbed, not discarded; its CPU is the
      // price of the answer itself.
      rep.winner_cpu_ns += st.usage.cpu_ns;
    } else {
      rep.discarded_pages += st.dirty_pages;
      rep.discarded_bytes += st.dirty_bytes;
    }
  }
  rep.wasted_cpu_ns = rep.total_cpu_ns - rep.winner_cpu_ns;
  return rep;
}

void AltGroup::finalize_accounting() {
  if (accounted_ || !spawned_ || my_index_ != 0) return;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!reaped_[i]) return;  // ledger incomplete; try again at next reap
  }
  accounted_ = true;
  if (!obs::enabled()) return;
  const SpeculationReport rep = speculation_report();
  obs::emit(obs::EventKind::kSpecReport, race_id_, 0, rep.wasted_cpu_ns,
            rep.discarded_pages, rep.winner_cpu_ns);
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("spec_wasted_cpu_ns").add(rep.wasted_cpu_ns);
  metrics.counter("spec_discarded_pages").add(rep.discarded_pages);
  metrics.counter("spec_discarded_bytes").add(rep.discarded_bytes);
  metrics.histogram("spec_overhead_ratio_x100")
      .record(static_cast<std::uint64_t>(rep.overhead_ratio() * 100.0));
}

}  // namespace altx::posix
