// The one reap path: wait4 with EINTR retry and rusage capture.
//
// Every place that used to loop on waitpid (AltGroup's opportunistic poll,
// its final reap, await_all's cohort teardown) goes through here, for two
// reasons. First, dedup: the EINTR dance and the WIFEXITED/WIFSIGNALED
// decoding were copied at each site. Second — the speculation-efficiency
// ledger needs it — waitpid discards exactly the numbers the accounting
// wants: wait4's rusage is the only way to learn how much CPU a SIGKILLed
// loser burned, because the loser itself is no longer around to ask.
#pragma once

#include <sys/resource.h>
#include <sys/wait.h>

#include <cerrno>
#include <cstdint>

namespace altx::posix {

/// One child's resource bill, decoded from wait4's rusage. Fields are the
/// subset the speculation ledger consumes; all zero when the kernel gave no
/// usage (it always does for reaped children on Linux).
struct ChildUsage {
  std::uint64_t cpu_ns = 0;      // user + system time
  std::uint64_t maxrss_kb = 0;   // peak resident set, KiB
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
};

[[nodiscard]] inline ChildUsage decode_rusage(const struct rusage& ru) {
  ChildUsage u;
  const auto tv_ns = [](const struct timeval& tv) {
    return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(tv.tv_usec) * 1'000ULL;
  };
  u.cpu_ns = tv_ns(ru.ru_utime) + tv_ns(ru.ru_stime);
  u.maxrss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
  u.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  u.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  return u;
}

/// wait4 retrying on EINTR. Same contract as waitpid(pid, status, flags):
/// returns the reaped pid, 0 when WNOHANG found nothing, -1 on error.
/// `usage` (optional) receives the child's rusage on a successful reap.
inline pid_t wait4_eintr(pid_t pid, int* status, int flags,
                         struct rusage* usage = nullptr) {
  while (true) {
    const pid_t r = ::wait4(pid, status, flags, usage);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// A wait(2) status decoded once, instead of WIF* logic at every call site.
struct ExitInfo {
  bool exited = false;    // WIFEXITED
  bool signaled = false;  // WIFSIGNALED
  int exit_code = -1;     // WEXITSTATUS when exited
  int signal = 0;         // WTERMSIG when signaled
};

[[nodiscard]] inline ExitInfo decode_wait_status(int status) {
  ExitInfo info;
  if (WIFEXITED(status)) {
    info.exited = true;
    info.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    info.signaled = true;
    info.signal = WTERMSIG(status);
  }
  return info;
}

}  // namespace altx::posix
