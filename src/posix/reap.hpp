// The one reap path: wait4 with EINTR retry and rusage capture.
//
// Every place that used to loop on waitpid (AltGroup's opportunistic poll,
// its final reap, await_all's cohort teardown) goes through here, for two
// reasons. First, dedup: the EINTR dance and the WIFEXITED/WIFSIGNALED
// decoding were copied at each site. Second — the speculation-efficiency
// ledger needs it — waitpid discards exactly the numbers the accounting
// wants: wait4's rusage is the only way to learn how much CPU a SIGKILLed
// loser burned, because the loser itself is no longer around to ask.
#pragma once

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <optional>

namespace altx::posix {

/// One child's resource bill, decoded from wait4's rusage. Fields are the
/// subset the speculation ledger consumes; all zero when the kernel gave no
/// usage (it always does for reaped children on Linux).
struct ChildUsage {
  std::uint64_t cpu_ns = 0;      // user + system time
  std::uint64_t maxrss_kb = 0;   // peak resident set, KiB
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
};

[[nodiscard]] inline ChildUsage decode_rusage(const struct rusage& ru) {
  ChildUsage u;
  const auto tv_ns = [](const struct timeval& tv) {
    return static_cast<std::uint64_t>(tv.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(tv.tv_usec) * 1'000ULL;
  };
  u.cpu_ns = tv_ns(ru.ru_utime) + tv_ns(ru.ru_stime);
  u.maxrss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
  u.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  u.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  return u;
}

/// wait4 retrying on EINTR. Same contract as waitpid(pid, status, flags):
/// returns the reaped pid, 0 when WNOHANG found nothing, -1 on error.
/// `usage` (optional) receives the child's rusage on a successful reap.
inline pid_t wait4_eintr(pid_t pid, int* status, int flags,
                         struct rusage* usage = nullptr) {
  while (true) {
    const pid_t r = ::wait4(pid, status, flags, usage);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// Live CPU (user + system, ns) of a still-running child from
/// /proc/<pid>/stat. wait4's rusage only exists once the child is reaped;
/// the governor's watchdog needs the bill *before* death to enforce a CPU
/// budget, and /proc is the only place the kernel publishes it for a live
/// process. nullopt when the pid is gone or /proc is unreadable.
[[nodiscard]] inline std::optional<std::uint64_t> proc_cpu_ns(pid_t pid) {
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%d/stat", static_cast<int>(pid));
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return std::nullopt;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return std::nullopt;
  buf[n] = '\0';
  // The comm field is parenthesised and may contain spaces; parse from the
  // last ')' so a hostile process name cannot shift the columns.
  const char* p = nullptr;
  for (const char* q = buf; *q != '\0'; ++q) {
    if (*q == ')') p = q;
  }
  if (p == nullptr) return std::nullopt;
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  // After ") " come: state ppid pgrp session tty tpgid flags minflt cminflt
  // majflt cmajflt utime stime (fields 3..15 of proc(5)).
  if (std::sscanf(p + 1,
                  " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu",
                  &utime, &stime) != 2) {
    return std::nullopt;
  }
  const long hz = ::sysconf(_SC_CLK_TCK);
  if (hz <= 0) return std::nullopt;
  return (utime + stime) * (1'000'000'000ULL / static_cast<std::uint64_t>(hz));
}

/// A wait(2) status decoded once, instead of WIF* logic at every call site.
struct ExitInfo {
  bool exited = false;    // WIFEXITED
  bool signaled = false;  // WIFSIGNALED
  int exit_code = -1;     // WEXITSTATUS when exited
  int signal = 0;         // WTERMSIG when signaled
};

[[nodiscard]] inline ExitInfo decode_wait_status(int status) {
  ExitInfo info;
  if (WIFEXITED(status)) {
    info.exited = true;
    info.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    info.signaled = true;
    info.signal = WTERMSIG(status);
  }
  return info;
}

}  // namespace altx::posix
