// Measured COW overheads on the host machine (section 4.4 reproduction).
//
// The paper reports, for the AT&T 3B2/310 and HP 9000/350:
//   - fork() of a 320 KB address space with no memory updates,
//   - the page-copy service rate under copy-on-write,
//   - the fraction of pages written as the governing independent variable.
// These helpers reproduce the same measurements on the present machine with
// the same primitives (fork, COW, page touching), so E2/E3 can print the
// paper's numbers next to freshly measured ones.
#pragma once

#include <cstddef>

namespace altx::posix {

struct ForkMeasurement {
  std::size_t arena_bytes = 0;
  int iterations = 0;
  double mean_ms = 0;  // mean cost of fork()+immediate child exit+wait
};

/// Times fork() of a process whose writable arena is `arena_bytes` (touched
/// beforehand so every page is backed); the child exits immediately — no
/// memory updates, exactly the paper's baseline case.
ForkMeasurement measure_fork(std::size_t arena_bytes, int iterations);

struct CopyMeasurement {
  std::size_t arena_bytes = 0;
  double fraction_written = 0;
  std::size_t pages_copied = 0;
  double child_write_ms = 0;   // time the child spent writing (COW faults)
  double pages_per_second = 0;
};

/// Forks a child that writes one byte to `fraction_written` of the arena's
/// pages, timing the writes (every one triggers a COW page copy). The timing
/// travels back through shared memory.
CopyMeasurement measure_page_copy(std::size_t arena_bytes,
                                  double fraction_written, int iterations);

}  // namespace altx::posix
