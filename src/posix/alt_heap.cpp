#include "posix/alt_heap.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

namespace altx::posix {

namespace {

// Registry of live trackables so the (process-wide) SIGSEGV handler can
// route a fault to the region that owns the address. Small and scanned
// linearly; no locking needed — faults are handled on the faulting thread
// and the backend is single-threaded by design (concurrency comes from
// processes).
std::vector<CowTrackable*> g_heaps;
struct sigaction g_prev_segv;
bool g_handler_installed = false;

}  // namespace

void heap_segv_handler(int signo, void* info_v, void* ctx) {
  auto* info = static_cast<siginfo_t*>(info_v);
  void* addr = info->si_addr;
  for (CowTrackable* h : g_heaps) {
    if (h->handle_fault(addr)) return;
  }
  // Not ours: restore the previous disposition and re-raise so genuine
  // crashes still crash.
  ::sigaction(SIGSEGV, &g_prev_segv, nullptr);
  ::raise(signo);
  (void)ctx;
}

extern "C" void altx_segv_trampoline(int signo, siginfo_t* info, void* ctx) {
  heap_segv_handler(signo, info, ctx);
}

namespace {

void install_handler() {
  if (g_handler_installed) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_flags = SA_SIGINFO;
  sa.sa_sigaction = &altx_segv_trampoline;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGSEGV, &sa, &g_prev_segv) != 0) throw_errno("sigaction");
  g_handler_installed = true;
}

}  // namespace

namespace detail {
void install_handler_for_trackables() { install_handler(); }
}  // namespace detail

static void install_handler_public() { detail::install_handler_for_trackables(); }

void register_trackable(CowTrackable* t) {
  install_handler_public();
  g_heaps.push_back(t);
}

void unregister_trackable(CowTrackable* t) { std::erase(g_heaps, t); }

AltHeap::AltHeap(std::size_t pages) {
  ALTX_REQUIRE(pages >= 1, "AltHeap: need at least one page");
  page_size_ = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  pages_ = pages;
  bytes_ = pages * page_size_;
  base_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base_ == MAP_FAILED) throw_errno("mmap");
  register_trackable(this);
}

AltHeap::~AltHeap() {
  unregister_trackable(this);
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

void AltHeap::begin_tracking() {
  install_handler();
  dirty_.clear();
  if (::mprotect(base_, bytes_, PROT_READ) != 0) throw_errno("mprotect(READ)");
  tracking_ = true;
}

void AltHeap::end_tracking() {
  if (::mprotect(base_, bytes_, PROT_READ | PROT_WRITE) != 0) {
    throw_errno("mprotect(RW)");
  }
  tracking_ = false;
}

bool AltHeap::handle_fault(void* addr) {
  if (!tracking_) return false;
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto b = reinterpret_cast<std::uintptr_t>(base_);
  if (a < b || a >= b + bytes_) return false;
  const std::size_t page = (a - b) / page_size_;
  // Async-signal-safety: mprotect is a plain syscall; the dirty_ vector push
  // is safe because the fault happens synchronously on this (only) thread.
  if (::mprotect(static_cast<std::uint8_t*>(base_) + page * page_size_,
                 page_size_, PROT_READ | PROT_WRITE) != 0) {
    return false;  // fall through to crash — cannot continue
  }
  dirty_.push_back(static_cast<std::uint32_t>(page));
  return true;
}

Bytes AltHeap::serialize_dirty() const {
  Bytes out;
  ByteWriter w(out);
  w.u64(page_size_);
  w.u64(dirty_.size());
  for (std::uint32_t page : dirty_) {
    w.u32(page);
    w.blob(static_cast<const std::uint8_t*>(base_) + page * page_size_,
           page_size_);
  }
  return out;
}

std::size_t AltHeap::apply_patch(const Bytes& patch) {
  ByteReader r(patch);
  const std::uint64_t psz = r.u64();
  ALTX_REQUIRE(psz == page_size_, "AltHeap::apply_patch: page size mismatch");
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t page = r.u32();
    ALTX_REQUIRE(page < pages_, "AltHeap::apply_patch: page out of range");
    const Bytes content = r.blob();
    ALTX_REQUIRE(content.size() == page_size_,
                 "AltHeap::apply_patch: bad page payload");
    std::memcpy(static_cast<std::uint8_t*>(base_) + page * page_size_,
                content.data(), page_size_);
  }
  return n;
}

}  // namespace altx::posix
