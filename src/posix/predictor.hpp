// SpeculationPlanner: prediction-driven speculation budgeting.
//
// The paper's PI model (§4.2) ranks alternatives statically; this is its
// online form — a CBS-style controller in the spirit of constant-bandwidth
// servers with per-task runtime prediction. At race start the planner reads
// each arm's wall-time quantiles and success rate from the per-arm history
// store (obs/history.hpp, fed by race<T>() via RaceOptions::site_id) and
// partitions the arms:
//
//   launch  — the predicted PI gain exceeds the arm's bandwidth charge:
//             the leader (cheapest expected cost = predicted wall divided
//             by success rate), every arm within hedge_ratio of it, and —
//             unconditionally — every arm with no usable history yet
//             (exploration: a cold arm must run to earn a prediction).
//   hedge   — an arm predicted much slower than the leader is deferred via
//             the hedged.hpp machinery: its child sleeps until the leader
//             has overrun its own predicted quantile (times stage_slack),
//             then runs. A fast leader commit eliminates the sleeper for
//             nearly free; a slow leader still gets its backup.
//   skip    — only under governor-reported memory/CPU pressure: dominated
//             arms (history says they essentially never win) have their
//             guard short-circuited to FAIL without running the method.
//
// Separately, each warm arm gets an early-kill deadline — its own
// historical ALTX_PRED_KILL_Q quantile (default p99). The governor's
// watchdog escalates arms past their deadline as ChildFate::kPredictedLoser,
// never an arm with no history and never the race's last live arm.
//
// The plan is a pure function of (config, history snapshot, pressure):
// given a fixed store it is deterministic, and with a cold store it
// degenerates to "launch everything" — exactly the predict-off plan — which
// is what makes the policy observation-equivalent to the unconditional
// semantics (every arm still runs, merely later or under a deadline that
// spares the last survivor).
//
// Env knobs (all read once, see PredictorConfig::from_env; off by default):
//   ALTX_PRED=1                 enable planning for every race with a site_id
//   ALTX_PRED_LAUNCH_Q          leader quantile used as its expected wall
//                               (default 0.5)
//   ALTX_PRED_KILL_Q            early-kill quantile (default 0.99)
//   ALTX_PRED_HEDGE_RATIO       hedge arms whose expected cost (wall over
//                               success rate) is this many times the
//                               leader's (default 4.0)
//   ALTX_PRED_STAGE_SLACK       stage delay = leader quantile x this
//                               (default 1.25)
//   ALTX_PRED_MIN_SAMPLES       history floor before an arm is predictable
//                               (default 3)
//   ALTX_PRED_MIN_SUCCESS       under pressure, skip hedged arms whose
//                               success rate is below this (default 0.02)
//   ALTX_PRED_MAX_STAGE_MS      clamp on the stage delay (default 10000)
#pragma once

#include <cstdint>
#include <vector>

#include "obs/history.hpp"

namespace altx::posix {

class SpeculationGovernor;

struct PredictorConfig {
  bool enabled = false;     // ALTX_PRED=1
  double launch_q = 0.5;    // leader's expected-wall quantile
  double kill_q = 0.99;     // early-kill quantile
  double hedge_ratio = 4.0; // bandwidth charge: hedge past leader x ratio
  double stage_slack = 1.25;
  std::uint32_t min_samples = 3;
  double min_success = 0.02;
  std::uint64_t max_stage_ms = 10'000;

  /// When false the planner never emits kSkip, whatever the pressure says.
  /// The checker runs with skips off: a skip short-circuits a guard, which
  /// is only oracle-admissible when the history is real, not injected.
  bool skip_enabled = true;

  /// Reads the ALTX_PRED_* knobs.
  static PredictorConfig from_env();
};

enum class ArmDecision : std::uint8_t {
  kLaunch = 0,  // fork and run immediately
  kHedge = 1,   // fork, but sleep out the stage delay before running
  kSkip = 2,    // fork, but short-circuit the guard to FAIL (pressure only)
};

const char* to_string(ArmDecision decision);

/// The plan for one alternative (1-based arm index).
struct ArmPlan {
  std::uint32_t arm = 0;
  ArmDecision decision = ArmDecision::kLaunch;
  std::uint64_t predicted_wall_ns = 0;  // launch_q quantile (0 = no history)
  std::uint64_t kill_after_ns = 0;      // kill_q quantile (0 = never killed)
  std::uint64_t stage_after_ns = 0;     // hedge only: deferral sleep
  double success_rate = 0.0;
  std::uint32_t samples = 0;
};

struct SpeculationPlan {
  /// True when at least one arm had usable history — predictions are in
  /// play. False (cold store, no store, site 0, predictor disabled) means
  /// the plan is all-launch with no deadlines: identical to predict-off.
  bool active = false;

  std::vector<ArmPlan> arms;  // one per alternative, index order
  int leader = 0;             // 1-based arm the plan bets on (0 = none)
  int launched = 0;
  int hedged = 0;
  int skipped = 0;

  [[nodiscard]] const ArmPlan* plan_for(std::uint32_t arm) const noexcept {
    const std::size_t i = arm - 1;
    return arm >= 1 && i < arms.size() ? &arms[i] : nullptr;
  }
};

class SpeculationPlanner {
 public:
  /// `store` may be nullptr (plans are then always inactive); the planner
  /// never writes to it. The store must outlive the planner.
  explicit SpeculationPlanner(PredictorConfig cfg,
                              const obs::HistoryStore* store);

  [[nodiscard]] const PredictorConfig& config() const { return cfg_; }

  /// Partitions `n_alts` arms of `site_id`. `under_pressure` is the
  /// governor's report (effective budget below base); it only ever enables
  /// kSkip. Pure: same (site, store contents, pressure) → same plan.
  [[nodiscard]] SpeculationPlan plan(std::uint64_t site_id, int n_alts,
                                     bool under_pressure) const;

  /// True when ALTX_PRED=1 (cached after the first call).
  static bool env_enabled() noexcept;

  /// The env-configured planner over the global history store; nullptr
  /// unless ALTX_PRED=1. Built on first use.
  static SpeculationPlanner* global() noexcept;

 private:
  PredictorConfig cfg_;
  const obs::HistoryStore* store_;
};

/// The governor's pressure signal as the planner consumes it: the effective
/// token budget has been shrunk below the configured base. False without a
/// governor (no pressure source = no skipping).
[[nodiscard]] bool governor_under_pressure(const SpeculationGovernor* gov);

}  // namespace altx::posix
