// SpeculationGovernor: resource governance for speculative arms.
//
// The paper's bet (§3.1) assumes spare capacity is free; a production
// process racing N alternatives per block can fork-bomb itself — losers
// burn CPU and dirty pages until elimination, and nothing bounds the
// *aggregate* when many blocks race concurrently. The governor is the
// containment layer (Randell's recovery-block confinement, plus the hedged
// -request discipline of Dean & Barroso) with three duties:
//
//   1. Per-arm quotas. Children get RLIMIT_CPU / RLIMIT_AS at fork, and a
//      parent-side watchdog — one poll(2) set of pidfds plus a timerfd —
//      escalates SIGTERM → SIGKILL on arms that exceed a wall-clock or CPU
//      budget (live CPU read from /proc/<pid>/stat; the final bill still
//      comes from wait4 at reap, as in the PR-3 accounting).
//
//   2. Global admission control. A token budget caps concurrent speculative
//      children across *all* blocks of the process tree (the pool lives in
//      MAP_SHARED memory, so nested blocks inside forked arms draw from the
//      same pool). A block that cannot get its n tokens within the bounded
//      admission wait is denied — AdmissionTimeout — and the supervisor
//      degrades it to serialized execution: the arms run one at a time,
//      each still fork-isolated, so the paper's §3.4 source/sink discipline
//      survives degradation. Single-token requests wait much longer and may
//      finally overdraft the pool: one child is the paper's own sequential
//      semantics — the floor, never zero — so the governor can throttle
//      speculation to sequential but can never wedge the program.
//
//   3. Pressure-driven shedding. /proc/pressure/{memory,cpu} PSI (fallback:
//      /proc/meminfo MemAvailable; fake-able via ALTX_PSI_PATH for tests)
//      shrinks the effective token budget as stall fractions climb, and at
//      the kill threshold proactively sheds the lowest-PI live arm (the
//      highest alternative index — alternatives are PI-ordered per §4.2)
//      before the OOM killer picks a victim for us, never a block's last
//      live arm.
//
// Everything is opt-in: without ALTX_GOV_* in the environment (or a
// programmatic config) global() is nullptr and every call site costs one
// null check. The watchdog acts only in the process that built the
// governor; a forked child's copy shares the admission pool but registers
// no watches (its thread did not survive the fork).
//
// Env knobs (see GovernorConfig::from_env):
//   ALTX_GOV_TOKENS         concurrent speculative children cap (0 = off)
//   ALTX_GOV_ADMIT_WAIT_MS  bounded admission wait for multi-arm blocks
//   ALTX_GOV_WALL_MS        per-arm wall-clock budget (0 = no watchdog)
//   ALTX_GOV_CPU_MS         per-arm CPU budget (0 = no CPU watchdog)
//   ALTX_GOV_RLIMIT_CPU_S   child RLIMIT_CPU seconds (0 = unset)
//   ALTX_GOV_RLIMIT_AS_MB   child RLIMIT_AS MiB (0 = unset)
//   ALTX_KILL_GRACE_MS      SIGTERM → SIGKILL escalation grace (default 0)
//   ALTX_PSI_PATH           read PSI from this file instead of /proc
//   ALTX_GOV_PSI_SHED       stall %% where the budget starts shrinking
//   ALTX_GOV_PSI_KILL       stall %% where live arms are shed
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace altx::posix {

struct GovernorConfig {
  /// Concurrent speculative children across every block (0 = admission off).
  int tokens = 0;

  /// How long a multi-arm (n >= 2) admission request may queue before it is
  /// denied and the block degrades. Requests wider than `tokens` can never
  /// fit and are denied without queueing.
  std::chrono::milliseconds admit_wait{250};

  /// Patience for single-token requests before the liveness overdraft.
  std::chrono::milliseconds serial_admit_wait{30'000};

  /// Per-arm watchdog budgets; 0 disables the respective check.
  std::chrono::milliseconds arm_wall_budget{0};
  std::chrono::milliseconds arm_cpu_budget{0};

  /// SIGTERM → SIGKILL escalation window for watchdog kills (0 = straight
  /// SIGKILL, the pre-governor behavior).
  std::chrono::milliseconds kill_grace{0};

  /// Hard kernel-side backstops applied in the child right after fork.
  std::uint64_t rlimit_cpu_s = 0;   // RLIMIT_CPU, seconds (0 = leave alone)
  std::uint64_t rlimit_as_mb = 0;   // RLIMIT_AS, MiB (0 = leave alone)

  /// Pressure monitoring. psi_path overrides the /proc sources (tests point
  /// it at a fixture file); thresholds are avg10 stall percentages.
  std::string psi_path;
  double psi_shed_pct = 60.0;   // budget starts shrinking here
  double psi_kill_pct = 90.0;   // lowest-PI arms are shed here
  double mem_floor_pct = 8.0;   // meminfo fallback: MemAvailable floor

  std::chrono::milliseconds poll_interval{5};       // watchdog cadence
  std::chrono::milliseconds pressure_interval{100}; // PSI sample cadence

  /// Run the watchdog even without wall/CPU budgets so predicted-kill
  /// deadlines (posix/predictor.hpp) have a thread to fire from. Set from
  /// ALTX_PRED=1, so prediction works without any ALTX_GOV_* knob.
  bool predict_watch = false;

  /// Reads the ALTX_GOV_* / ALTX_KILL_GRACE_MS / ALTX_PSI_PATH knobs.
  static GovernorConfig from_env();

  /// True when any duty (admission, watchdog, rlimits) is configured.
  [[nodiscard]] bool any_enabled() const {
    return tokens > 0 || arm_wall_budget.count() > 0 ||
           arm_cpu_budget.count() > 0 || rlimit_cpu_s > 0 ||
           rlimit_as_mb > 0 || predict_watch;
  }
};

/// Thrown by alt_spawn when the admission wait expired without tokens. The
/// supervisor treats it as the degrade signal, not an error: the block runs
/// serialized instead.
class AdmissionTimeout : public SystemError {
 public:
  explicit AdmissionTimeout(int requested)
      : SystemError("governor admission (requested " +
                        std::to_string(requested) + " tokens)",
                    EAGAIN) {}
};

enum class Admission : std::uint8_t {
  kGranted,    // tokens taken from the pool
  kOverdraft,  // single-token liveness grant past the pool cap
  kDenied,     // wait expired (n >= 2 only)
};

enum class GovKillReason : std::uint8_t {
  kWall = 0,  // wall-clock budget exceeded
  kCpu = 1,   // CPU budget exceeded
  kShed = 2,  // pressure shed (lowest-PI live arm)
  kPredicted = 3,  // elapsed wall overran the arm's own historical kill
                   // quantile (predictor's early-kill rule)
};

const char* to_string(GovKillReason reason);

/// What the pressure sources said, one sample.
struct PressureSample {
  bool valid = false;
  double mem_stall_pct = 0.0;    // PSI memory "some" avg10
  double cpu_stall_pct = 0.0;    // PSI cpu "some" avg10
  double mem_available_pct = -1; // meminfo fallback; -1 = unknown
};

/// Parses PSI ("some avg10=X ...") from `psi_override` when non-empty, else
/// /proc/pressure/{memory,cpu}, else the /proc/meminfo fallback. Exposed
/// for tests.
[[nodiscard]] PressureSample read_pressure(const std::string& psi_override);

struct GovernorStats {
  std::uint64_t admitted = 0;
  std::uint64_t waited = 0;      // admissions that had to queue first
  std::uint64_t denied = 0;
  std::uint64_t overdrafts = 0;
  std::uint64_t reclaimed = 0;   // tokens returned from dead holders
  std::uint64_t kills_wall = 0;
  std::uint64_t kills_cpu = 0;
  std::uint64_t kills_shed = 0;
  std::uint64_t kills_predicted = 0;
  std::uint64_t term_escalations = 0;  // SIGTERMs that needed the SIGKILL
  std::uint64_t degradations = 0;      // blocks run serialized
  std::uint64_t pressure_shrinks = 0;  // budget reductions applied
  int in_flight = 0;
  int max_in_flight = 0;       // high-water mark, including overdrafts
  int effective_tokens = 0;    // budget after pressure shrink
};

class SpeculationGovernor {
 public:
  explicit SpeculationGovernor(GovernorConfig cfg);
  ~SpeculationGovernor();

  SpeculationGovernor(const SpeculationGovernor&) = delete;
  SpeculationGovernor& operator=(const SpeculationGovernor&) = delete;

  [[nodiscard]] const GovernorConfig& config() const { return cfg_; }
  [[nodiscard]] bool admission_enabled() const { return cfg_.tokens > 0; }

  /// Takes n tokens, queueing up to the configured wait. kDenied only for
  /// n >= 2 — a single-token request waits serial_admit_wait and then
  /// overdrafts, so sequential progress is always possible.
  Admission admit(int n);

  /// Returns n tokens to the pool.
  void release(int n);

  /// Returns the tokens held by processes that no longer exist. Normally a
  /// process releases what it admitted as it reaps; a process SIGKILLed
  /// mid-block (altxd tearing down a worker cohort) never does, and its
  /// tokens would leak from the shared pool forever. Each admit records the
  /// caller's holding in a per-pid ledger inside the MAP_SHARED pool; this
  /// scans the ledger, probes each holder with kill(pid, 0), and returns
  /// dead holders' tokens. Call it from the pool's supervisor after any
  /// forced teardown (and periodically). Returns the tokens reclaimed.
  int reconcile_dead_holders();

  /// Registers a freshly forked arm with the watchdog (no-op when neither
  /// budget is configured, or in a forked copy of the governor — the
  /// watchdog thread lives only in the creating process). `pred_kill_ns`
  /// is the predictor's early-kill deadline: elapsed wall past it escalates
  /// the arm as a predicted loser, unless it is the race's last live arm.
  /// 0 = no history, never predicted-killed.
  void watch(pid_t pid, std::uint32_t race_id, int child_index,
             std::uint64_t pred_kill_ns = 0);

  /// Unregisters an arm (idempotent; called at reap).
  void unwatch(pid_t pid);

  /// If the watchdog killed `pid`, returns why and forgets the entry — the
  /// reaper uses it to classify the fate as over-budget, not crashed.
  std::optional<GovKillReason> consume_kill(pid_t pid);

  /// Child side, right after fork: applies RLIMIT_CPU / RLIMIT_AS.
  void apply_child_rlimits() const;

  /// Samples the pressure sources and re-derives the effective budget now
  /// (the watchdog does this on its own cadence; tests call it directly).
  void poll_pressure_now();

  /// The token budget after pressure shrink (floor 1; = tokens when calm).
  [[nodiscard]] int effective_tokens() const;

  /// Supervisor marks a governor-driven serialized degradation.
  void note_degraded();

  [[nodiscard]] GovernorStats stats() const;

  /// The env-configured process governor, built on first use; nullptr when
  /// no ALTX_GOV_* knob is set. Race options resolve a null governor field
  /// to this.
  static SpeculationGovernor* global();

 private:
  struct SharedPool;   // MAP_SHARED counters (fork-wide truth)
  struct WatchEntry;

  void watchdog_loop();
  void wake_watchdog();
  void escalate(WatchEntry& e, GovKillReason reason, std::uint64_t now_ns);
  void shed_lowest_pi(std::uint64_t now_ns);
  void apply_pressure(const PressureSample& s);

  GovernorConfig cfg_;
  SharedPool* pool_ = nullptr;  // shared mapping; survives fork
  pid_t owner_pid_ = -1;        // process that owns the watchdog thread

  std::mutex mu_;               // guards watches_ + kills_
  std::vector<WatchEntry> watches_;
  std::unordered_map<pid_t, GovKillReason> kills_;
  std::atomic<bool> stop_{false};
  int wake_fd_ = -1;            // eventfd: registration changes / shutdown
  int timer_fd_ = -1;           // timerfd: budget + pressure cadence
  std::thread watchdog_;

  // Watchdog-local tallies (only the owner process kills).
  std::atomic<std::uint64_t> kills_wall_{0};
  std::atomic<std::uint64_t> kills_cpu_{0};
  std::atomic<std::uint64_t> kills_shed_{0};
  std::atomic<std::uint64_t> kills_predicted_{0};
  std::atomic<std::uint64_t> term_escalations_{0};
  std::atomic<std::uint64_t> pressure_shrinks_{0};
};

}  // namespace altx::posix
