#include "posix/fault.hpp"

#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace altx::posix {

namespace {

constexpr int kExitEarly = 77;  // kEarlyExit's status: not a protocol code

/// One independent draw per (seed, attempt, child, salt). Routing every
/// decision through a freshly derived Rng keeps decisions order-independent:
/// asking about child 3 before child 1 changes nothing.
double derived_uniform(std::uint64_t seed, std::uint64_t attempt,
                       int child_index, std::uint64_t salt) {
  std::uint64_t x = seed;
  x ^= 0x9e3779b97f4a7c15ULL + attempt;
  x ^= (static_cast<std::uint64_t>(child_index) + 0x632be59bd9b4e019ULL) *
       0xff51afd7ed558ccdULL;
  x ^= salt * 0xc4ceb9fe1a85ec53ULL;
  return Rng(x).uniform();
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrashSegv: return "crash_segv";
    case FaultKind::kCrashKill: return "crash_kill";
    case FaultKind::kHang: return "hang";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kEarlyExit: return "early_exit";
    case FaultKind::kDropCommit: return "drop_commit";
    case FaultKind::kCpuSpin: return "cpu_spin";
    case FaultKind::kMemHog: return "mem_hog";
  }
  return "?";
}

void FaultProfile::validate() const {
  const double probs[] = {crash_segv, crash_kill, hang,     delay,
                          early_exit, drop_commit, cpu_spin, mem_hog,
                          fork_fail,  fork_storm};
  for (double p : probs) {
    ALTX_REQUIRE(p >= 0.0 && p <= 1.0,
                 "FaultProfile: probabilities must be in [0, 1]");
  }
  ALTX_REQUIRE(child_total() <= 1.0 + 1e-9,
               "FaultProfile: child-side probabilities sum past 1");
  ALTX_REQUIRE(delay_for.count() >= 0, "FaultProfile: negative delay");
  ALTX_REQUIRE(hang_for.count() >= 0, "FaultProfile: negative hang");
  ALTX_REQUIRE(spin_for.count() >= 0, "FaultProfile: negative spin");
  ALTX_REQUIRE(storm_tries >= 0, "FaultProfile: negative storm_tries");
}

FaultProfile FaultProfile::parse(const std::string& spec) {
  FaultProfile p;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    ALTX_REQUIRE(eq != std::string::npos,
                 "FaultProfile: expected key=value in plan spec");
    const std::string key = item.substr(0, eq);
    const char* vbegin = item.c_str() + eq + 1;
    char* vend = nullptr;
    const double value = std::strtod(vbegin, &vend);
    ALTX_REQUIRE(vend != vbegin && *vend == '\0',
                 "FaultProfile: bad numeric value in '" + item + "'");
    if (key == "crash_segv") p.crash_segv = value;
    else if (key == "crash_kill") p.crash_kill = value;
    else if (key == "hang") p.hang = value;
    else if (key == "delay") p.delay = value;
    else if (key == "early_exit") p.early_exit = value;
    else if (key == "drop_commit") p.drop_commit = value;
    else if (key == "cpu_spin") p.cpu_spin = value;
    else if (key == "mem_hog") p.mem_hog = value;
    else if (key == "fork_fail") p.fork_fail = value;
    else if (key == "fork_storm") p.fork_storm = value;
    else if (key == "delay_ms") p.delay_for = std::chrono::milliseconds(
                 static_cast<long long>(value));
    else if (key == "hang_ms") p.hang_for = std::chrono::milliseconds(
                 static_cast<long long>(value));
    else if (key == "spin_ms") p.spin_for = std::chrono::milliseconds(
                 static_cast<long long>(value));
    else if (key == "hog_mb") p.hog_mb = static_cast<std::uint64_t>(value);
    else if (key == "storm_tries") p.storm_tries = static_cast<int>(value);
    else ALTX_REQUIRE(false, "FaultProfile: unknown key '" + key + "'");
  }
  p.validate();
  return p;
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultProfile profile)
    : seed_(seed), profile_(profile) {
  profile_.validate();
}

std::unique_ptr<FaultInjector> FaultInjector::from_env() {
  const char* plan = std::getenv("ALTX_FAULT_PLAN");
  if (plan == nullptr || *plan == '\0') return nullptr;
  std::uint64_t seed = 0;
  if (const char* s = std::getenv("ALTX_FAULT_SEED")) {
    seed = std::strtoull(s, nullptr, 0);
  }
  return std::make_unique<FaultInjector>(seed, FaultProfile::parse(plan));
}

FaultKind FaultInjector::decide(std::uint64_t attempt, int child_index) const {
  const double u = derived_uniform(seed_, attempt, child_index, /*salt=*/1);
  double acc = profile_.crash_segv;
  if (u < acc) return FaultKind::kCrashSegv;
  acc += profile_.crash_kill;
  if (u < acc) return FaultKind::kCrashKill;
  acc += profile_.hang;
  if (u < acc) return FaultKind::kHang;
  acc += profile_.delay;
  if (u < acc) return FaultKind::kDelay;
  acc += profile_.early_exit;
  if (u < acc) return FaultKind::kEarlyExit;
  acc += profile_.drop_commit;
  if (u < acc) return FaultKind::kDropCommit;
  acc += profile_.cpu_spin;
  if (u < acc) return FaultKind::kCpuSpin;
  acc += profile_.mem_hog;
  if (u < acc) return FaultKind::kMemHog;
  return FaultKind::kNone;
}

bool FaultInjector::fork_fails(std::uint64_t attempt, int child_index,
                               int try_n) const {
  if (profile_.fork_fail > 0.0 &&
      derived_uniform(seed_, attempt, child_index, /*salt=*/2) <
          profile_.fork_fail) {
    return true;
  }
  if (profile_.fork_storm > 0.0 && try_n < profile_.storm_tries &&
      derived_uniform(seed_, attempt, child_index, /*salt=*/3) <
          profile_.fork_storm) {
    return true;
  }
  return false;
}

FaultKind FaultInjector::at_sync_point(std::uint64_t attempt,
                                       int child_index) const {
  const FaultKind kind = decide(attempt, child_index);
  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kDropCommit:
      return kind;
    case FaultKind::kCrashSegv: {
      // AltHeap installs a SIGSEGV handler for dirty-page tracking; restore
      // the default disposition first so the raise actually kills us. No
      // core: a fault matrix kills hundreds of children per run.
      struct rlimit rl{0, 0};
      ::setrlimit(RLIMIT_CORE, &rl);
      ::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      _exit(kExitEarly);  // unreachable unless raise is blocked
    }
    case FaultKind::kCrashKill:
      ::raise(SIGKILL);
      _exit(kExitEarly);
    case FaultKind::kHang: {
      auto left = std::chrono::duration_cast<std::chrono::microseconds>(
          profile_.hang_for);
      while (left.count() > 0) {
        const auto slice = std::min<long long>(left.count(), 500'000);
        ::usleep(static_cast<useconds_t>(slice));
        left -= std::chrono::microseconds(slice);
      }
      _exit(kExitEarly);  // woke past the hang: die without synchronizing
    }
    case FaultKind::kDelay:
      ::usleep(static_cast<useconds_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              profile_.delay_for)
              .count()));
      return FaultKind::kNone;
    case FaultKind::kEarlyExit:
      _exit(kExitEarly);
    case FaultKind::kCpuSpin: {
      // Burn real CPU (not wall clock): the arm the governor's CPU budget /
      // RLIMIT_CPU must catch. If nothing kills us first, die unsynced.
      const auto until = std::chrono::steady_clock::now() + profile_.spin_for;
      volatile std::uint64_t sink = 0;
      while (std::chrono::steady_clock::now() < until) {
        for (int i = 0; i < 10'000; ++i) sink = sink * 6364136223846793005ULL + 1;
      }
      _exit(kExitEarly);
    }
    case FaultKind::kMemHog: {
      // Touch every page so the allocation is resident, then stall holding
      // it — the pressure source PSI shedding and RLIMIT_AS are aimed at.
      const std::size_t bytes =
          static_cast<std::size_t>(profile_.hog_mb) << 20;
      char* hog = static_cast<char*>(std::malloc(bytes));
      if (hog != nullptr) {
        for (std::size_t off = 0; off < bytes; off += 4096) hog[off] = 1;
      }
      auto left = std::chrono::duration_cast<std::chrono::microseconds>(
          profile_.hang_for);
      while (left.count() > 0) {
        const auto slice = std::min<long long>(left.count(), 500'000);
        ::usleep(static_cast<useconds_t>(slice));
        left -= std::chrono::microseconds(slice);
      }
      _exit(kExitEarly);
    }
  }
  return FaultKind::kNone;
}

}  // namespace altx::posix
