// AltHeap: a copy-on-write shared-state arena for real processes.
//
// This is the POSIX realisation of the paper's sink-state management: the
// parent allocates an anonymous MAP_PRIVATE arena; fork() gives every
// alternative a copy-on-write view of it for free (the kernel's COW is the
// paper's page-map inheritance). Each child tracks the pages it writes — the
// per-process descriptor table of section 3.3 — by keeping the arena
// read-protected and catching the first write to each page with a SIGSEGV
// handler that records the page and opens it up.
//
// At synchronization the winning child ships exactly its dirty pages through
// a pipe; the parent patches them into its own arena, which is the absorb
// step ("atomically replacing its page pointer with that of the child") at
// page granularity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace altx::posix {

/// Internal interface: anything that read-protects a region and wants the
/// shared SIGSEGV handler to route faults to it (AltHeap, FileHeap).
class CowTrackable {
 public:
  virtual bool handle_fault(void* addr) = 0;

 protected:
  ~CowTrackable() = default;
};

/// Registers/unregisters a trackable with the process-wide fault handler
/// (installed lazily on first registration).
void register_trackable(CowTrackable* t);
void unregister_trackable(CowTrackable* t);

class AltHeap : public CowTrackable {
 public:
  /// Maps an arena of `pages` system pages. The arena starts writable in the
  /// parent (tracking off).
  explicit AltHeap(std::size_t pages);
  ~AltHeap();

  AltHeap(const AltHeap&) = delete;
  AltHeap& operator=(const AltHeap&) = delete;

  [[nodiscard]] void* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }
  [[nodiscard]] std::size_t pages() const noexcept { return pages_; }

  /// Typed view of the arena at a byte offset.
  template <typename T>
  [[nodiscard]] T* at(std::size_t byte_offset) const {
    ALTX_REQUIRE(byte_offset + sizeof(T) <= bytes_, "AltHeap::at: out of range");
    return reinterpret_cast<T*>(static_cast<std::uint8_t*>(base_) + byte_offset);
  }

  /// Called by an alternative right after fork(): read-protects the arena and
  /// starts recording dirty pages.
  void begin_tracking();

  /// The page indices written since begin_tracking().
  [[nodiscard]] const std::vector<std::uint32_t>& dirty_pages() const {
    return dirty_;
  }

  /// Serialises the dirty pages (index + contents) for the commit pipe.
  [[nodiscard]] Bytes serialize_dirty() const;

  /// Parent side: applies a winner's dirty pages to this arena.
  /// Returns the number of pages patched.
  std::size_t apply_patch(const Bytes& patch);

  /// Stops tracking (unprotects everything); used by tests.
  void end_tracking();

  bool handle_fault(void* addr) override;

 private:

  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t page_size_ = 0;
  std::size_t pages_ = 0;
  bool tracking_ = false;
  std::vector<std::uint32_t> dirty_;
};

}  // namespace altx::posix
