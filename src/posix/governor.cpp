#include "posix/governor.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posix/reap.hpp"

namespace altx::posix {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 0);
}

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtod(s, nullptr);
}

std::chrono::milliseconds env_ms(const char* name, long long fallback) {
  return std::chrono::milliseconds(
      static_cast<long long>(env_u64(name, static_cast<std::uint64_t>(fallback))));
}

int open_pidfd(pid_t pid) {
#ifdef SYS_pidfd_open
  const long fd = ::syscall(SYS_pidfd_open, pid, 0);
  return fd >= 0 ? static_cast<int>(fd) : -1;
#else
  (void)pid;
  return -1;
#endif
}

/// "some avg10=12.34 ..." → 12.34; -1 when the stanza is absent.
double parse_psi_some_avg10(const char* buf) {
  const char* p = std::strstr(buf, "some");
  if (p == nullptr) return -1.0;
  p = std::strstr(p, "avg10=");
  if (p == nullptr) return -1.0;
  return std::strtod(p + 6, nullptr);
}

bool slurp(const char* path, char* buf, std::size_t cap) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  const std::size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return n > 0;
}

/// "MemAvailable: 123 kB" / "MemTotal: 456 kB" → available/total * 100.
double meminfo_available_pct() {
  char buf[4096];
  if (!slurp("/proc/meminfo", buf, sizeof buf)) return -1.0;
  auto field = [&](const char* key) -> double {
    const char* p = std::strstr(buf, key);
    if (p == nullptr) return -1.0;
    return std::strtod(p + std::strlen(key), nullptr);
  };
  const double total = field("MemTotal:");
  const double avail = field("MemAvailable:");
  if (total <= 0 || avail < 0) return -1.0;
  return avail / total * 100.0;
}

}  // namespace

const char* to_string(GovKillReason reason) {
  switch (reason) {
    case GovKillReason::kWall: return "wall";
    case GovKillReason::kCpu: return "cpu";
    case GovKillReason::kShed: return "shed";
    case GovKillReason::kPredicted: return "predicted";
  }
  return "?";
}

PressureSample read_pressure(const std::string& psi_override) {
  PressureSample s;
  char buf[1024];
  if (!psi_override.empty()) {
    if (slurp(psi_override.c_str(), buf, sizeof buf)) {
      const double v = parse_psi_some_avg10(buf);
      if (v >= 0) {
        s.valid = true;
        s.mem_stall_pct = v;
      }
    }
    return s;
  }
  if (slurp("/proc/pressure/memory", buf, sizeof buf)) {
    const double v = parse_psi_some_avg10(buf);
    if (v >= 0) {
      s.valid = true;
      s.mem_stall_pct = v;
    }
  }
  if (slurp("/proc/pressure/cpu", buf, sizeof buf)) {
    const double v = parse_psi_some_avg10(buf);
    if (v >= 0) {
      s.valid = true;
      s.cpu_stall_pct = v;
    }
  }
  if (!s.valid) s.mem_available_pct = meminfo_available_pct();
  return s;
}

GovernorConfig GovernorConfig::from_env() {
  GovernorConfig c;
  c.tokens = static_cast<int>(env_u64("ALTX_GOV_TOKENS", 0));
  c.admit_wait = env_ms("ALTX_GOV_ADMIT_WAIT_MS", c.admit_wait.count());
  c.serial_admit_wait =
      env_ms("ALTX_GOV_SERIAL_WAIT_MS", c.serial_admit_wait.count());
  c.arm_wall_budget = env_ms("ALTX_GOV_WALL_MS", 0);
  c.arm_cpu_budget = env_ms("ALTX_GOV_CPU_MS", 0);
  c.kill_grace = env_ms("ALTX_KILL_GRACE_MS", 0);
  c.rlimit_cpu_s = env_u64("ALTX_GOV_RLIMIT_CPU_S", 0);
  c.rlimit_as_mb = env_u64("ALTX_GOV_RLIMIT_AS_MB", 0);
  if (const char* p = std::getenv("ALTX_PSI_PATH")) c.psi_path = p;
  c.psi_shed_pct = env_double("ALTX_GOV_PSI_SHED", c.psi_shed_pct);
  c.psi_kill_pct = env_double("ALTX_GOV_PSI_KILL", c.psi_kill_pct);
  c.mem_floor_pct = env_double("ALTX_GOV_MEM_FLOOR", c.mem_floor_pct);
  c.poll_interval = env_ms("ALTX_GOV_POLL_MS", c.poll_interval.count());
  c.predict_watch = env_u64("ALTX_PRED", 0) != 0;
  return c;
}

/// The fork-wide truth: admission counters live in one MAP_SHARED page so a
/// nested block racing inside a forked arm draws from the same pool its
/// parent does. Kill tallies stay process-local (only the owner kills).
///
/// The holder ledger tracks how many tokens each *process* currently holds.
/// A process normally returns its tokens as it reaps; one SIGKILLed
/// mid-block (altxd destroying a worker cohort) never does, so
/// reconcile_dead_holders() uses the ledger to give a dead holder's tokens
/// back. Slots are claimed on first admit and recycled only by reconcile,
/// so the ledger stays single-writer per slot; when all kMaxHolders slots
/// are taken a holding goes untracked — the pool math is still correct, the
/// holding just cannot be reclaimed on a forced kill.
struct SpeculationGovernor::SharedPool {
  static constexpr int kMaxHolders = 128;
  struct Holder {
    std::atomic<std::int32_t> pid;
    std::atomic<std::int32_t> held;
  };

  std::atomic<int> in_flight;
  std::atomic<int> max_in_flight;
  std::atomic<int> effective;   // budget after pressure shrink
  std::atomic<std::uint64_t> admitted;
  std::atomic<std::uint64_t> waited;
  std::atomic<std::uint64_t> denied;
  std::atomic<std::uint64_t> overdrafts;
  std::atomic<std::uint64_t> reclaimed;
  std::atomic<std::uint64_t> degradations;
  std::atomic<std::uint32_t> last_stall_pct_x100;
  Holder holders[kMaxHolders];

  /// Adjusts the calling process's ledger entry by `delta` tokens.
  void note_held(int delta) noexcept {
    const std::int32_t self = static_cast<std::int32_t>(::getpid());
    for (Holder& h : holders) {
      if (h.pid.load(std::memory_order_acquire) == self) {
        h.held.fetch_add(delta, std::memory_order_relaxed);
        return;
      }
    }
    if (delta <= 0) return;  // released after our slot was reconciled away
    for (Holder& h : holders) {
      std::int32_t expect = 0;
      if (h.pid.compare_exchange_strong(expect, self,
                                        std::memory_order_acq_rel)) {
        h.held.fetch_add(delta, std::memory_order_relaxed);
        return;
      }
    }
  }
};

struct SpeculationGovernor::WatchEntry {
  pid_t pid = -1;
  int pidfd = -1;
  std::uint32_t race_id = 0;
  int child_index = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t term_deadline_ns = 0;  // nonzero once SIGTERM was sent
  std::uint64_t pred_kill_ns = 0;      // predictor deadline (0 = no history)
  bool killed = false;                 // SIGKILL sent; waiting for unwatch
  GovKillReason reason = GovKillReason::kWall;
};

SpeculationGovernor::SpeculationGovernor(GovernorConfig cfg) : cfg_(cfg) {
  ALTX_REQUIRE(cfg_.tokens >= 0, "governor: tokens must be >= 0");
  ALTX_REQUIRE(cfg_.psi_kill_pct >= cfg_.psi_shed_pct,
               "governor: psi_kill must be >= psi_shed");
  owner_pid_ = ::getpid();
  void* p = ::mmap(nullptr, sizeof(SharedPool), PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw_errno("governor: mmap(pool)");
  pool_ = new (p) SharedPool{};
  pool_->effective.store(cfg_.tokens, std::memory_order_relaxed);

  const bool needs_watchdog = cfg_.tokens > 0 ||
                              cfg_.arm_wall_budget.count() > 0 ||
                              cfg_.arm_cpu_budget.count() > 0 ||
                              cfg_.predict_watch;
  if (!needs_watchdog) return;

  poll_pressure_now();
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("governor: eventfd");
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) throw_errno("governor: timerfd_create");
  const long long poll_ns =
      std::max<long long>(1, cfg_.poll_interval.count()) * 1'000'000LL;
  itimerspec its{};
  its.it_interval.tv_sec = poll_ns / 1'000'000'000LL;
  its.it_interval.tv_nsec = poll_ns % 1'000'000'000LL;
  its.it_value = its.it_interval;
  if (::timerfd_settime(timer_fd_, 0, &its, nullptr) != 0) {
    throw_errno("governor: timerfd_settime");
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

SpeculationGovernor::~SpeculationGovernor() {
  // A forked copy must not join a thread it does not have, nor unmap the
  // pool out from under live siblings — but forked children leave through
  // _exit, so only the owner ever runs this in practice.
  if (::getpid() == owner_pid_ && watchdog_.joinable()) {
    stop_.store(true, std::memory_order_release);
    wake_watchdog();
    watchdog_.join();
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (WatchEntry& e : watches_) {
      if (e.pidfd >= 0) ::close(e.pidfd);
    }
    watches_.clear();
  }
  if (pool_ != nullptr && ::getpid() == owner_pid_) {
    ::munmap(pool_, sizeof(SharedPool));
  }
  pool_ = nullptr;
}

void SpeculationGovernor::wake_watchdog() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

Admission SpeculationGovernor::admit(int n) {
  if (!admission_enabled() || n <= 0) return Admission::kGranted;
  if (n > cfg_.tokens) {
    // Wider than the base budget: no amount of queueing can ever fit it.
    // Deny immediately so the caller degrades now instead of after a
    // pointless admit_wait. (n == 1 never lands here: tokens >= 1.)
    pool_->denied.fetch_add(1, std::memory_order_relaxed);
    obs::emit(obs::EventKind::kGovDeny, obs::current_race(), 0,
              static_cast<std::uint64_t>(n), 0);
    if (obs::enabled()) {
      obs::MetricsRegistry::global().counter("gov_denials").add();
    }
    return Admission::kDenied;
  }
  const std::uint64_t t0 = obs::now_ns();
  const std::uint64_t wait_ns =
      static_cast<std::uint64_t>(
          (n == 1 ? cfg_.serial_admit_wait : cfg_.admit_wait).count()) *
      1'000'000ULL;
  bool waited = false;
  auto bump_max = [this](int cur) {
    int seen = pool_->max_in_flight.load(std::memory_order_relaxed);
    while (cur > seen &&
           !pool_->max_in_flight.compare_exchange_weak(seen, cur)) {
    }
  };
  for (;;) {
    const int eff = pool_->effective.load(std::memory_order_relaxed);
    int cur = pool_->in_flight.load(std::memory_order_relaxed);
    while (cur + n <= eff) {
      if (pool_->in_flight.compare_exchange_weak(cur, cur + n)) {
        bump_max(cur + n);
        pool_->note_held(n);
        pool_->admitted.fetch_add(1, std::memory_order_relaxed);
        if (waited) pool_->waited.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) {
          const std::uint64_t dt = obs::now_ns() - t0;
          obs::emit(obs::EventKind::kGovAdmit, obs::current_race(), 0,
                    static_cast<std::uint64_t>(n),
                    static_cast<std::uint64_t>(cur + n), dt);
          auto& m = obs::MetricsRegistry::global();
          m.counter("gov_admits").add();
          if (waited) m.histogram("gov_admit_wait_ns").record(dt);
        }
        return Admission::kGranted;
      }
    }
    const std::uint64_t now = obs::now_ns();
    if (now - t0 >= wait_ns) {
      if (n == 1) {
        // The liveness overdraft: one child is the paper's own sequential
        // semantics — refusing it would wedge the program, so the single
        // arm runs and the pool goes briefly over budget.
        const int after = pool_->in_flight.fetch_add(1) + 1;
        bump_max(after);
        pool_->note_held(1);
        pool_->overdrafts.fetch_add(1, std::memory_order_relaxed);
        obs::emit(obs::EventKind::kGovOverdraft, obs::current_race(), 0,
                  static_cast<std::uint64_t>(after));
        if (obs::enabled()) {
          obs::MetricsRegistry::global().counter("gov_overdrafts").add();
        }
        return Admission::kOverdraft;
      }
      pool_->denied.fetch_add(1, std::memory_order_relaxed);
      obs::emit(obs::EventKind::kGovDeny, obs::current_race(), 0,
                static_cast<std::uint64_t>(n), now - t0);
      if (obs::enabled()) {
        obs::MetricsRegistry::global().counter("gov_denials").add();
      }
      return Admission::kDenied;
    }
    if (!waited) {
      waited = true;
      obs::emit(obs::EventKind::kGovAdmitWait, obs::current_race(), 0,
                static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(cur),
                static_cast<std::uint64_t>(eff));
    }
    ::usleep(500);
  }
}

void SpeculationGovernor::release(int n) {
  if (!admission_enabled() || n <= 0) return;
  pool_->in_flight.fetch_sub(n, std::memory_order_relaxed);
  pool_->note_held(-n);
}

int SpeculationGovernor::reconcile_dead_holders() {
  if (!admission_enabled()) return 0;
  const std::int32_t self = static_cast<std::int32_t>(::getpid());
  int reclaimed = 0;
  for (SharedPool::Holder& h : pool_->holders) {
    const std::int32_t pid = h.pid.load(std::memory_order_acquire);
    if (pid == 0 || pid == self) continue;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) {
      continue;  // alive (or alive-but-unsignalable, EPERM)
    }
    // Claim the slot (pid → 0) before touching the count, so two
    // reconcilers can never both return the same holding. A freed slot is
    // claimable by the next first-time admitter.
    std::int32_t expect = pid;
    if (!h.pid.compare_exchange_strong(expect, 0,
                                       std::memory_order_acq_rel)) {
      continue;
    }
    const std::int32_t held = h.held.exchange(0, std::memory_order_relaxed);
    if (held > 0) {
      pool_->in_flight.fetch_sub(held, std::memory_order_relaxed);
      reclaimed += held;
    }
  }
  if (reclaimed > 0) {
    pool_->reclaimed.fetch_add(static_cast<std::uint64_t>(reclaimed),
                               std::memory_order_relaxed);
    if (obs::enabled()) {
      obs::MetricsRegistry::global().counter("gov_reclaimed").add(
          static_cast<std::uint64_t>(reclaimed));
    }
  }
  return reclaimed;
}

void SpeculationGovernor::watch(pid_t pid, std::uint32_t race_id,
                                int child_index,
                                std::uint64_t pred_kill_ns) {
  // Only the owner process has the thread that can act on a watch; a forked
  // copy registering would leak entries nobody scans.
  if (::getpid() != owner_pid_ || !watchdog_.joinable()) return;
  if (cfg_.arm_wall_budget.count() == 0 && cfg_.arm_cpu_budget.count() == 0 &&
      cfg_.psi_kill_pct >= 100.0 && cfg_.tokens == 0 && !cfg_.predict_watch &&
      pred_kill_ns == 0) {
    return;
  }
  WatchEntry e;
  e.pid = pid;
  e.pidfd = open_pidfd(pid);
  e.race_id = race_id;
  e.child_index = child_index;
  e.pred_kill_ns = pred_kill_ns;
  e.start_ns = obs::now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    watches_.push_back(e);
  }
  wake_watchdog();
}

void SpeculationGovernor::unwatch(pid_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    if (watches_[i].pid == pid) {
      if (watches_[i].pidfd >= 0) ::close(watches_[i].pidfd);
      watches_.erase(watches_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::optional<GovKillReason> SpeculationGovernor::consume_kill(pid_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = kills_.find(pid);
  if (it == kills_.end()) return std::nullopt;
  const GovKillReason r = it->second;
  kills_.erase(it);
  return r;
}

void SpeculationGovernor::apply_child_rlimits() const {
  if (cfg_.rlimit_cpu_s > 0) {
    // Soft limit delivers SIGXCPU at the budget, hard limit SIGKILLs one
    // second later — the kernel-side backstop behind the watchdog.
    struct rlimit rl{static_cast<rlim_t>(cfg_.rlimit_cpu_s),
                     static_cast<rlim_t>(cfg_.rlimit_cpu_s + 1)};
    ::setrlimit(RLIMIT_CPU, &rl);
  }
  if (cfg_.rlimit_as_mb > 0) {
    const rlim_t bytes = static_cast<rlim_t>(cfg_.rlimit_as_mb) << 20;
    struct rlimit rl{bytes, bytes};
    ::setrlimit(RLIMIT_AS, &rl);
  }
}

void SpeculationGovernor::note_degraded() {
  pool_->degradations.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter("gov_degraded").add();
  }
}

int SpeculationGovernor::effective_tokens() const {
  return pool_->effective.load(std::memory_order_relaxed);
}

GovernorStats SpeculationGovernor::stats() const {
  GovernorStats s;
  s.admitted = pool_->admitted.load(std::memory_order_relaxed);
  s.waited = pool_->waited.load(std::memory_order_relaxed);
  s.denied = pool_->denied.load(std::memory_order_relaxed);
  s.overdrafts = pool_->overdrafts.load(std::memory_order_relaxed);
  s.reclaimed = pool_->reclaimed.load(std::memory_order_relaxed);
  s.degradations = pool_->degradations.load(std::memory_order_relaxed);
  s.in_flight = pool_->in_flight.load(std::memory_order_relaxed);
  s.max_in_flight = pool_->max_in_flight.load(std::memory_order_relaxed);
  s.effective_tokens = pool_->effective.load(std::memory_order_relaxed);
  s.kills_wall = kills_wall_.load(std::memory_order_relaxed);
  s.kills_cpu = kills_cpu_.load(std::memory_order_relaxed);
  s.kills_shed = kills_shed_.load(std::memory_order_relaxed);
  s.kills_predicted = kills_predicted_.load(std::memory_order_relaxed);
  s.term_escalations = term_escalations_.load(std::memory_order_relaxed);
  s.pressure_shrinks = pressure_shrinks_.load(std::memory_order_relaxed);
  return s;
}

void SpeculationGovernor::apply_pressure(const PressureSample& s) {
  double stall = 0.0;
  if (s.valid) stall = std::max(s.mem_stall_pct, s.cpu_stall_pct);
  pool_->last_stall_pct_x100.store(
      static_cast<std::uint32_t>(stall * 100.0), std::memory_order_relaxed);
  if (cfg_.tokens <= 0) return;  // admission off: nothing to shrink

  int eff = cfg_.tokens;
  if (s.valid && stall >= cfg_.psi_shed_pct) {
    const double span = std::max(1e-9, cfg_.psi_kill_pct - cfg_.psi_shed_pct);
    const double frac = std::min(1.0, (stall - cfg_.psi_shed_pct) / span);
    eff = cfg_.tokens -
          static_cast<int>(frac * static_cast<double>(cfg_.tokens - 1) + 0.5);
  }
  if (s.mem_available_pct >= 0 && s.mem_available_pct < cfg_.mem_floor_pct) {
    eff = 1;  // meminfo fallback: nearly out of memory, sequential floor
  }
  eff = std::clamp(eff, 1, cfg_.tokens);
  const int old = pool_->effective.exchange(eff, std::memory_order_relaxed);
  if (eff != old) {
    if (eff < old) pressure_shrinks_.fetch_add(1, std::memory_order_relaxed);
    obs::emit(obs::EventKind::kGovBudget, 0, 0,
              static_cast<std::uint64_t>(eff),
              static_cast<std::uint64_t>(cfg_.tokens),
              static_cast<std::uint64_t>(stall * 100.0));
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .histogram("gov_effective_tokens")
          .record(static_cast<std::uint64_t>(eff));
    }
  }
}

void SpeculationGovernor::poll_pressure_now() {
  apply_pressure(read_pressure(cfg_.psi_path));
}

void SpeculationGovernor::escalate(WatchEntry& e, GovKillReason reason,
                                   std::uint64_t now_ns) {
  // First escalation records the kill (for fate classification at reap) and
  // counts it once, whatever the ladder does afterwards.
  kills_.emplace(e.pid, reason);
  switch (reason) {
    case GovKillReason::kWall:
      kills_wall_.fetch_add(1, std::memory_order_relaxed);
      break;
    case GovKillReason::kCpu:
      kills_cpu_.fetch_add(1, std::memory_order_relaxed);
      break;
    case GovKillReason::kShed:
      kills_shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case GovKillReason::kPredicted:
      kills_predicted_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  e.reason = reason;
  // Predicted kills get their own event kind (the trace ties them back to
  // the arm's history quantile); every other reason keeps kGovKill.
  const bool predicted = reason == GovKillReason::kPredicted;
  const obs::EventKind kind =
      predicted ? obs::EventKind::kPredKill : obs::EventKind::kGovKill;
  const std::uint64_t b =
      predicted ? e.pred_kill_ns : static_cast<std::uint64_t>(reason);
  if (cfg_.kill_grace.count() > 0) {
    ::kill(e.pid, SIGTERM);
    e.term_deadline_ns =
        now_ns + static_cast<std::uint64_t>(cfg_.kill_grace.count()) * 1'000'000ULL;
    obs::emit(kind, e.race_id, static_cast<std::int16_t>(e.child_index),
              static_cast<std::uint64_t>(e.pid), b, /*stage=*/0);
  } else {
    ::kill(e.pid, SIGKILL);
    e.killed = true;
    obs::emit(kind, e.race_id, static_cast<std::int16_t>(e.child_index),
              static_cast<std::uint64_t>(e.pid), b, /*stage=*/1);
  }
  if (obs::enabled()) {
    auto& m = obs::MetricsRegistry::global();
    m.counter(std::string("gov_kills_") + to_string(reason)).add();
    if (predicted) m.counter("pred_kills").add();
  }
}

void SpeculationGovernor::shed_lowest_pi(std::uint64_t now_ns) {
  // One arm per pressure tick, lowest PI first (the highest alternative
  // index — alternatives are PI-ordered), and never a block's last live
  // arm: shedding a loser is indistinguishable from elimination, while
  // starving a whole block would trade an outcome for memory.
  std::unordered_map<std::uint32_t, int> live_per_race;
  for (const WatchEntry& e : watches_) {
    if (!e.killed && e.term_deadline_ns == 0) ++live_per_race[e.race_id];
  }
  WatchEntry* victim = nullptr;
  for (WatchEntry& e : watches_) {
    if (e.killed || e.term_deadline_ns != 0) continue;
    if (live_per_race[e.race_id] < 2) continue;
    if (victim == nullptr || e.child_index > victim->child_index) victim = &e;
  }
  if (victim != nullptr) escalate(*victim, GovKillReason::kShed, now_ns);
}

void SpeculationGovernor::watchdog_loop() {
  const std::uint64_t wall_ns =
      static_cast<std::uint64_t>(cfg_.arm_wall_budget.count()) * 1'000'000ULL;
  const std::uint64_t cpu_ns =
      static_cast<std::uint64_t>(cfg_.arm_cpu_budget.count()) * 1'000'000ULL;
  const std::uint64_t pressure_ns =
      static_cast<std::uint64_t>(
          std::max<long long>(1, cfg_.pressure_interval.count())) *
      1'000'000ULL;
  std::uint64_t next_pressure_ns = obs::now_ns() + pressure_ns;

  std::vector<pollfd> fds;
  std::vector<pid_t> fd_pids;  // fds[i+2] belongs to fd_pids[i]
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_pids.clear();
    fds.push_back({wake_fd_, POLLIN, 0});
    fds.push_back({timer_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const WatchEntry& e : watches_) {
        if (e.pidfd >= 0) {
          fds.push_back({e.pidfd, POLLIN, 0});
          fd_pids.push_back(e.pid);
        }
      }
    }
    ::poll(fds.data(), fds.size(), /*timeout ms=*/100);
    if (stop_.load(std::memory_order_acquire)) break;
    std::uint64_t scratch;
    if (fds[0].revents & POLLIN) {
      while (::read(wake_fd_, &scratch, sizeof scratch) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) {
      while (::read(timer_fd_, &scratch, sizeof scratch) > 0) {
      }
    }

    const std::uint64_t now = obs::now_ns();
    if (now >= next_pressure_ns) {
      poll_pressure_now();
      next_pressure_ns = now + pressure_ns;
    }

    std::lock_guard<std::mutex> lock(mu_);
    // Arms whose pidfd signalled have exited on their own; drop the watch
    // (the parent still reaps and bills them — we only stop threatening).
    for (std::size_t i = 0; i + 2 < fds.size() + 0 && i < fd_pids.size(); ++i) {
      if ((fds[i + 2].revents & (POLLIN | POLLERR | POLLNVAL)) == 0) continue;
      for (std::size_t j = 0; j < watches_.size(); ++j) {
        if (watches_[j].pid == fd_pids[i]) {
          if (watches_[j].pidfd >= 0) ::close(watches_[j].pidfd);
          watches_.erase(watches_.begin() + static_cast<std::ptrdiff_t>(j));
          break;
        }
      }
    }
    // Live-arm census for the predictor's liveness rule, built only when an
    // entry actually carries a predicted deadline. Counts registered arms
    // that have not been threatened yet — an undercount versus the block's
    // true live set is conservative (we refuse a kill, never over-kill).
    std::unordered_map<std::uint32_t, int> pred_live;
    bool any_pred = false;
    for (const WatchEntry& e : watches_) {
      if (e.pred_kill_ns > 0) any_pred = true;
    }
    if (any_pred) {
      for (const WatchEntry& e : watches_) {
        if (!e.killed && e.term_deadline_ns == 0) ++pred_live[e.race_id];
      }
    }
    for (WatchEntry& e : watches_) {
      if (e.killed) continue;
      if (e.term_deadline_ns != 0) {
        if (now >= e.term_deadline_ns) {
          ::kill(e.pid, SIGKILL);  // grace expired: escalate
          e.killed = true;
          term_escalations_.fetch_add(1, std::memory_order_relaxed);
          const bool predicted = e.reason == GovKillReason::kPredicted;
          obs::emit(predicted ? obs::EventKind::kPredKill
                              : obs::EventKind::kGovKill,
                    e.race_id, static_cast<std::int16_t>(e.child_index),
                    static_cast<std::uint64_t>(e.pid),
                    predicted ? e.pred_kill_ns
                              : static_cast<std::uint64_t>(e.reason),
                    /*stage=*/1);
        }
        continue;
      }
      if (wall_ns > 0 && now - e.start_ns > wall_ns) {
        escalate(e, GovKillReason::kWall, now);
        continue;
      }
      // Predicted early kill: this arm has overrun its own historical kill
      // quantile. Arms with no history carry pred_kill_ns == 0 and are never
      // considered; the last live arm of a race is always spared (liveness —
      // a mispredicting model must degrade to sequential, never to wedged).
      if (e.pred_kill_ns > 0 && now - e.start_ns > e.pred_kill_ns &&
          pred_live[e.race_id] >= 2) {
        --pred_live[e.race_id];
        escalate(e, GovKillReason::kPredicted, now);
        continue;
      }
      if (cpu_ns > 0) {
        const auto cpu = proc_cpu_ns(e.pid);
        if (cpu.has_value() && *cpu > cpu_ns) {
          escalate(e, GovKillReason::kCpu, now);
        }
      }
    }
    const double stall =
        pool_->last_stall_pct_x100.load(std::memory_order_relaxed) / 100.0;
    if (stall >= cfg_.psi_kill_pct) shed_lowest_pi(now);
  }
}

SpeculationGovernor* SpeculationGovernor::global() {
  static const std::unique_ptr<SpeculationGovernor> g = [] {
    const GovernorConfig c = GovernorConfig::from_env();
    return c.any_enabled() ? std::make_unique<SpeculationGovernor>(c)
                           : std::unique_ptr<SpeculationGovernor>();
  }();
  return g.get();
}

}  // namespace altx::posix
