// await_all: the conjunction companion to race().
//
// The paper's section 5.2 names two kinds of rule-level parallelism:
// OR-parallelism (mutually exclusive alternatives — race()) and
// AND-parallelism ("if goals A and B must be satisfied, we can pursue the
// satisfaction of A and B in parallel"). await_all runs every task in its
// own forked process and succeeds only when ALL of them produce a value;
// one failure (nullopt, exception, crash, or timeout) fails the whole
// conjunction and the surviving children are eliminated.
//
// Unlike race() there is no speculation to hide: every task's result is
// needed, so no commit token is involved — just isolation and collection.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "obs/trace.hpp"
#include "posix/race.hpp"
#include "posix/reap.hpp"

namespace altx::posix {

struct AwaitOptions {
  std::chrono::milliseconds timeout{30'000};

  /// Optional seeded fault plan (see posix/fault.hpp): children consult it
  /// just before delivering their result; the parent consults it before
  /// each fork. await_all has no commit token, so kDropCommit simply loses
  /// the child's frame — which fails the conjunction, as any crash does.
  FaultInjector* fault = nullptr;
};

/// Runs every task concurrently; returns all results (in task order) or
/// nullopt if any task failed or the deadline passed.
template <RaceSerializable T>
std::optional<std::vector<T>> await_all(const std::vector<AlternativeFn<T>>& tasks,
                                        const AwaitOptions& options = {}) {
  ALTX_REQUIRE(!tasks.empty(), "await_all: need at least one task");
  const std::size_t n = tasks.size();

  // One pipe per child: framed results cannot interleave.
  std::vector<Pipe> pipes;
  pipes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pipes.push_back(Pipe::create());

  const std::uint64_t attempt =
      options.fault != nullptr ? options.fault->begin_attempt() : 0;
  const std::uint32_t trace_id = obs::next_race_id();
  obs::emit(obs::EventKind::kAwaitBegin, trace_id, 0,
            static_cast<std::uint64_t>(n));

  std::vector<pid_t> children(n, -1);
  auto abandon_cohort = [&](std::size_t have) {
    for (std::size_t k = 0; k < have; ++k) ::kill(children[k], SIGKILL);
    for (std::size_t k = 0; k < have; ++k) {
      int status = 0;
      wait4_eintr(children[k], &status, 0);
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (options.fault != nullptr &&
        options.fault->fork_fails(attempt, static_cast<int>(i) + 1)) {
      abandon_cohort(i);
      throw SystemError("fork(await_all) (injected fault)", EAGAIN);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      abandon_cohort(i);
      throw SystemError("fork(await_all)", err);
    }
    if (pid == 0) {
      // Drop every inherited pipe end except our own write end, so a failed
      // sibling's pipe reaches EOF as soon as its owner exits.
      for (std::size_t k = 0; k < n; ++k) {
        pipes[k].read_end.reset();
        if (k != i) pipes[k].write_end.reset();
      }
      const auto task_index = static_cast<std::int16_t>(i + 1);
      obs::emit(obs::EventKind::kGuardStart, trace_id, task_index);
      try {
        const std::optional<T> out = tasks[i]();
        if (out.has_value()) {
          bool drop = false;
          if (options.fault != nullptr) {
            drop = options.fault->at_sync_point(
                       attempt, static_cast<int>(i) + 1) ==
                   FaultKind::kDropCommit;
          }
          if (!drop) {
            write_frame(pipes[i].write_end.get(), race_encode<T>(*out));
            obs::emit(obs::EventKind::kAwaitTaskDone, trace_id, task_index, 1);
            _exit(0);
          }
        }
      } catch (...) {
      }
      obs::emit(obs::EventKind::kAwaitTaskDone, trace_id, task_index, 0);
      _exit(41);  // failed: no frame written
    }
    children[i] = pid;
  }

  const auto deadline = std::chrono::steady_clock::now() + options.timeout;
  std::vector<T> results(n);
  std::vector<bool> got(n, false);
  bool failed = false;

  auto cleanup = [&](bool kill_all) {
    if (kill_all) {
      for (pid_t pid : children) ::kill(pid, SIGKILL);
    }
    for (pid_t pid : children) {
      int status = 0;
      wait4_eintr(pid, &status, 0);
    }
  };

  // Collect in order; each wait is bounded by the global deadline. A child
  // that exits without a frame yields EOF, which read_frame reports as
  // nullopt -> failure.
  for (std::size_t i = 0; i < n && !failed; ++i) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      failed = true;
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    // Close our copy of the write end so EOF is observable.
    pipes[i].write_end.reset();
    if (!wait_readable(pipes[i].read_end.get(),
                       static_cast<int>(remaining.count()) + 1)) {
      failed = true;
      break;
    }
    const auto frame = read_frame(pipes[i].read_end.get());
    if (!frame.has_value()) {
      failed = true;
      break;
    }
    results[i] = race_decode<T>(*frame);
    got[i] = true;
  }

  cleanup(failed);
  obs::emit(obs::EventKind::kAwaitDecided, trace_id, 0, failed ? 0 : 1);
  if (failed) return std::nullopt;
  return results;
}

}  // namespace altx::posix
