// Checkpoint/restart and the remote-fork cost experiment (section 4.4,
// Smith & Ioannidis 1989).
//
// The paper's rfork() dumps the process state into an executable file whose
// bootstrap restores registers and data segments; the dominating cost is
// "creating a checkpoint of the process in its entirety" plus shipping it
// over the network file system.
//
// Substitution (documented in DESIGN.md): we checkpoint an explicit state
// image (bytes) rather than freezing a live register set — the costs the
// experiment measures (serialisation, file write + sync, transfer, restore)
// are the same ones that dominated the paper's implementation. The "remote"
// node is a forked process restoring from the checkpoint file; wide-area
// latency is added from the machine model.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/sim_time.hpp"

namespace altx::posix {

/// Writes an image to a checkpoint file (magic + length + payload + fsync).
void checkpoint_save(const std::string& path, const Bytes& image);

/// Reads an image back; throws SystemError/UsageError on corruption.
Bytes checkpoint_load(const std::string& path);

struct RforkResult {
  std::size_t image_bytes = 0;
  double checkpoint_ms = 0;  // serialise + write + fsync
  double restore_ms = 0;     // child: read + verify
  double total_ms = 0;       // end-to-end including process creation
};

/// Measures a full rfork cycle on this machine: checkpoint `image_bytes` of
/// state to `dir`, fork a fresh process that restores from the file and acks
/// through a pipe. `simulated_network_ms` is added to total_ms to model the
/// transfer the paper paid through its network file system.
RforkResult rfork_simulated(std::size_t image_bytes, double simulated_network_ms,
                            const std::string& dir);

}  // namespace altx::posix
