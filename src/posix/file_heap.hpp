// FileHeap: speculative transactions on a durable file.
//
// The paper's single-level store buries files under the page abstraction
// ("files are named sets of pages"), so the same copy-on-write machinery
// that isolates alternatives over memory also isolates them over files.
// FileHeap maps a file MAP_PRIVATE: every process (and every forked
// alternative) reads the file's pages directly, writes go to private copies,
// and nothing touches the disk until the parent — after absorbing the
// winner — explicitly commits, making the block a transaction on the file
// (all of the winner's updates or none).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "posix/alt_heap.hpp"
#include "posix/fd.hpp"

namespace altx::posix {

class FileHeap : public CowTrackable {
 public:
  /// Opens (creating and zero-extending if needed) `path` and maps `pages`
  /// system pages of it copy-on-write.
  FileHeap(const std::string& path, std::size_t pages);
  ~FileHeap();

  FileHeap(const FileHeap&) = delete;
  FileHeap& operator=(const FileHeap&) = delete;

  [[nodiscard]] void* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }
  [[nodiscard]] std::size_t pages() const noexcept { return pages_; }

  template <typename T>
  [[nodiscard]] T* at(std::size_t byte_offset) const {
    ALTX_REQUIRE(byte_offset + sizeof(T) <= bytes_, "FileHeap::at: out of range");
    return reinterpret_cast<T*>(static_cast<std::uint8_t*>(base_) + byte_offset);
  }

  /// Child side: start recording dirty pages (same mprotect/SIGSEGV
  /// descriptor table as AltHeap).
  void begin_tracking();
  void end_tracking();
  [[nodiscard]] Bytes serialize_dirty() const;

  /// Parent side: applies a winner's dirty pages to the in-memory view and
  /// records them for the next commit().
  std::size_t apply_patch(const Bytes& patch);

  /// Writes every page modified since the last commit (whether patched in
  /// from a winner or written directly by the caller) back to the file and
  /// fsyncs — the transaction's commit point. Returns pages written.
  std::size_t commit();

  /// Discards in-memory modifications: remaps the file, restoring the
  /// on-disk state (the transaction's abort).
  void rollback();

  /// Marks a page modified directly by the caller (apply_patch marks its
  /// pages automatically) so commit() persists it.
  void mark_dirty(std::uint32_t page);

  [[nodiscard]] const std::vector<std::uint32_t>& dirty_pages() const {
    return dirty_;
  }

  bool handle_fault(void* addr) override;

 private:
  void map();
  void unmap();
  void note_pending(std::uint32_t page);

  std::string path_;
  Fd fd_;
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t page_size_ = 0;
  std::size_t pages_ = 0;
  bool tracking_ = false;
  std::vector<std::uint32_t> dirty_;    // child-side descriptor table
  std::vector<std::uint32_t> pending_;  // parent-side pages awaiting commit
};

}  // namespace altx::posix
