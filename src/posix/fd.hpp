// RAII file descriptors and pipe helpers for the POSIX backend.
#pragma once

#include <fcntl.h>
#include <limits.h>
#include <poll.h>
#include <unistd.h>

#include <cstddef>
#include <cstring>
#include <optional>
#include <utility>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace altx::posix {

/// Owns a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  void reset() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

struct Pipe {
  Fd read_end;
  Fd write_end;

  static Pipe create(bool nonblocking_read = false) {
    int fds[2];
    if (::pipe(fds) != 0) throw_errno("pipe");
    Pipe p;
    p.read_end = Fd(fds[0]);
    p.write_end = Fd(fds[1]);
    if (nonblocking_read) {
      const int flags = ::fcntl(fds[0], F_GETFL);
      if (flags < 0 || ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK) < 0) {
        throw_errno("fcntl(O_NONBLOCK)");
      }
    }
    return p;
  }
};

/// Writes the whole buffer, retrying on EINTR / short writes.
inline void write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; returns false on clean EOF before any byte,
/// throws on errors or truncation mid-record.
inline bool read_exact(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw SystemError("read: truncated record", EIO);
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

/// Length-prefixed frame I/O over a pipe.
inline void write_frame(int fd, const Bytes& payload) {
  std::uint64_t len = payload.size();
  // Frames that fit in PIPE_BUF go out as ONE write: pipe writes up to
  // PIPE_BUF are atomic, so a header can never interleave with another
  // writer's payload. Two writers exist only when two children both hold a
  // commit token (the ALTX_TEST_BREAK_AT_MOST_ONCE double-commit sabotage);
  // split writes there corrupt the stream and the parent's frame parse
  // throws instead of the checker seeing the second commit.
  if (sizeof len + len <= PIPE_BUF) {
    std::uint8_t buf[sizeof len + PIPE_BUF];
    std::memcpy(buf, &len, sizeof len);
    if (!payload.empty()) std::memcpy(buf + sizeof len, payload.data(), len);
    write_all(fd, buf, sizeof len + len);
    return;
  }
  write_all(fd, &len, sizeof len);
  if (!payload.empty()) write_all(fd, payload.data(), payload.size());
}

inline std::optional<Bytes> read_frame(int fd) {
  std::uint64_t len = 0;
  if (!read_exact(fd, &len, sizeof len)) return std::nullopt;
  Bytes payload(len);
  if (len > 0 && !read_exact(fd, payload.data(), len)) {
    throw SystemError("read_frame: truncated payload", EIO);
  }
  return payload;
}

/// Waits for readability with a millisecond deadline. Returns true if
/// readable, false on timeout.
inline bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  while (true) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return r > 0;
  }
}

}  // namespace altx::posix
