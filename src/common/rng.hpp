// Deterministic pseudo-random number generation.
//
// Everything in the simulator that needs randomness draws from an explicit
// Rng instance seeded by the experiment, never from global state, so every
// simulation run and property test is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace altx {

/// xoshiro256** with a splitmix64 seeder. Small, fast, and good enough for
/// workload generation (we are not doing cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    ALTX_REQUIRE(bound > 0, "Rng::below: bound must be positive");
    // Lemire's multiply-shift rejection method for unbiased bounded draws.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    ALTX_REQUIRE(lo <= hi, "Rng::range: lo must be <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    ALTX_REQUIRE(mean > 0, "Rng::exponential: mean must be positive");
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (one draw per call; we do not cache the
  /// pair because reproducibility across call sites matters more than speed).
  double normal(double mean, double stddev) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) {
    ALTX_REQUIRE(xm > 0 && alpha > 0, "Rng::pareto: xm and alpha must be > 0");
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derive an independent child generator (e.g. one per simulated process).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace altx
