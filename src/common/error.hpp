// Error handling primitives shared by every altx module.
//
// Policy (see DESIGN.md): programming errors (broken invariants, misuse of an
// API) throw std::logic_error subclasses; environmental failures (a syscall
// failing, a peer vanishing) throw std::runtime_error subclasses. Simulator
// internals additionally use ALTX_ASSERT for invariants that indicate a bug
// in the simulator itself.
#pragma once

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace altx {

/// Thrown when a caller violates an API precondition.
class UsageError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a simulator invariant is violated (a bug, not user error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an OS primitive fails in the POSIX backend.
class SystemError : public std::runtime_error {
 public:
  SystemError(const std::string& what, int err)
      : std::runtime_error(what + ": " + std::strerror(err)), errno_(err) {}
  [[nodiscard]] int code() const noexcept { return errno_; }

 private:
  int errno_;
};

/// Throws SystemError capturing the current errno.
[[noreturn]] inline void throw_errno(const std::string& what) {
  throw SystemError(what, errno);
}

}  // namespace altx

#define ALTX_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::altx::InvariantError(std::string("invariant failed at ") +    \
                                   __FILE__ + ":" + std::to_string(__LINE__) + \
                                   ": " + (msg));                           \
    }                                                                       \
  } while (0)

#define ALTX_REQUIRE(cond, msg)                      \
  do {                                               \
    if (!(cond)) {                                   \
      throw ::altx::UsageError(msg);                 \
    }                                                \
  } while (0)
