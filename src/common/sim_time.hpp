// Simulated time.
//
// The kernel simulator measures everything in integer microseconds, which is
// fine-grained enough for the paper's millisecond-scale costs while keeping
// event ordering exact (no floating-point clock drift).
#pragma once

#include <cstdint>
#include <string>

namespace altx {

/// Microseconds of simulated wall-clock time.
using SimTime = std::int64_t;

constexpr SimTime kUsec = 1;
constexpr SimTime kMsec = 1000 * kUsec;
constexpr SimTime kSec = 1000 * kMsec;

/// Renders a duration with an appropriate unit for bench output.
inline std::string format_time(SimTime t) {
  char buf[64];
  if (t >= kSec) {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(t) / kSec);
  } else if (t >= kMsec) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(t) / kMsec);
  } else {
    std::snprintf(buf, sizeof buf, "%lld us", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace altx
