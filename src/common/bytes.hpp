// Flat byte-buffer serialisation.
//
// The POSIX backend moves alternative results and dirty pages between real
// processes through pipes and shared memory, and the checkpoint/restart code
// writes process images to files; both need a simple, explicit wire format.
// Everything is little-endian fixed-width — the two ends are always the same
// machine (or the same simulator), so no cross-architecture concerns.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace altx {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void blob(const void* data, std::size_t n) {
    u64(n);
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

  void str(const std::string& s) { blob(s.data(), s.size()); }

 private:
  Bytes& out_;
};

/// Reads primitive values back out; throws UsageError on truncation so a
/// corrupt pipe message is reported rather than silently misparsed.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  Bytes blob() {
    const std::uint64_t n = u64();
    need(n);
    Bytes b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  std::string str() {
    const Bytes b = blob();
    return std::string(b.begin(), b.end());
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

 private:
  void need(std::uint64_t n) const {
    ALTX_REQUIRE(pos_ + n <= size_, "ByteReader: truncated buffer");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace altx
