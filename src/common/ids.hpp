// Identifier types shared across the simulator, message layer and consensus.
#pragma once

#include <cstdint>

namespace altx {

/// Unique process identifier within a simulated system (never reused within a
/// run, so predicates can refer to long-dead processes unambiguously).
using Pid = std::uint32_t;
constexpr Pid kNoPid = 0;

/// Node in the (simulated) distributed system.
using NodeId = std::uint32_t;

/// Named IPC endpoint a process binds; senders address ports, not pids, so a
/// service survives the pid changing hands (e.g. world splits).
using Port = std::uint32_t;

}  // namespace altx
