// Small statistics helpers used by the performance-model benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace altx {

/// Accumulates a sample set and answers the summary questions the paper's
/// analysis asks: mean, min (tau of C_best), variance (the paper's measure of
/// dispersion in section 4.2), and percentiles.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    ALTX_REQUIRE(!samples_.empty(), "Summary::mean: no samples");
    double s = 0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    ALTX_REQUIRE(!samples_.empty(), "Summary::min: no samples");
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    ALTX_REQUIRE(!samples_.empty(), "Summary::max: no samples");
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Population variance (the dispersion measure of section 4.2).
  [[nodiscard]] double variance() const {
    ALTX_REQUIRE(!samples_.empty(), "Summary::variance: no samples");
    const double m = mean();
    double s = 0;
    for (double x : samples_) s += (x - m) * (x - m);
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const {
    ALTX_REQUIRE(!samples_.empty(), "Summary::percentile: no samples");
    ALTX_REQUIRE(p >= 0 && p <= 100, "Summary::percentile: p out of range");
    sort();
    const auto n = static_cast<double>(samples_.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank > 0) --rank;
    return sorted_samples_[std::min(rank, samples_.size() - 1)];
  }

  [[nodiscard]] double median() const { return percentile(50); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void sort() const {
    if (!sorted_) {
      sorted_samples_ = samples_;
      std::sort(sorted_samples_.begin(), sorted_samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

}  // namespace altx
