// Fixed-width text tables for bench output.
//
// Every bench binary prints the rows of the paper table/figure it reproduces;
// this formatter keeps that output aligned and diffable.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace altx {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }

  static std::string num(std::int64_t v) { return std::to_string(v); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += "+";
    }
    os << rule << "\n";
    for (const auto& row : rows_) print_row(os, row, widths);
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size() + 1, ' ');
      if (c + 1 < widths.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace altx
